#include "serve/query_engine.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "common/thread_pool.h"

namespace utcq::serve {

namespace {

/// Cache key: corpus shard in the high half, local index in the low half.
uint64_t CacheKey(uint32_t shard, uint32_t local) {
  return (static_cast<uint64_t>(shard) << 32) | local;
}

/// Pseudo-shard of tier-mode cache keys. In tier mode *every* entry —
/// sealed or live — is keyed by its global trajectory id: a sealed
/// trajectory's decoded form never changes, so the very entry warmed while
/// it was live keeps serving after the flush moves it into the sealed set,
/// and across live-shard rebuilds. (A sealed archive set never reaches
/// 2^32 - 1 real shards, so the pseudo-shard cannot collide.)
constexpr uint32_t kTierKeyShard = 0xFFFFFFFFu;

obs::MetricRegistry* ResolveRegistry(
    obs::MetricRegistry* requested,
    std::unique_ptr<obs::MetricRegistry>& owned) {
  if (requested != nullptr) return requested;
  owned = std::make_unique<obs::MetricRegistry>();
  return owned.get();
}

}  // namespace

QueryRequest QueryRequest::MakeWhere(uint32_t traj, traj::Timestamp t,
                                     double alpha) {
  QueryRequest req;
  req.kind = QueryKind::kWhere;
  req.traj = traj;
  req.t = t;
  req.alpha = alpha;
  return req;
}

QueryRequest QueryRequest::MakeWhen(uint32_t traj, network::EdgeId edge,
                                    double rd, double alpha) {
  QueryRequest req;
  req.kind = QueryKind::kWhen;
  req.traj = traj;
  req.edge = edge;
  req.rd = rd;
  req.alpha = alpha;
  return req;
}

QueryRequest QueryRequest::MakeRange(const network::Rect& region,
                                     traj::Timestamp tq, double alpha) {
  QueryRequest req;
  req.kind = QueryKind::kRange;
  req.region = region;
  req.t = tq;
  req.alpha = alpha;
  return req;
}

#define UTCQ_ENGINE_INIT(opts)                                            \
  opts_(opts), clock_(opts.clock != nullptr ? opts.clock                  \
                                            : &obs::Clock::Real()),       \
      cache_(opts.cache_budget_bytes, opts.cache_shards,                  \
             ResolveRegistry(opts.registry, owned_registry_))

QueryEngine::QueryEngine(const core::UtcqQueryProcessor& queries,
                         EngineOptions opts)
    : single_(&queries), UTCQ_ENGINE_INIT(opts) {
  InitInstruments();
}

QueryEngine::QueryEngine(const shard::ShardedCorpus& corpus,
                         EngineOptions opts)
    : sharded_(&corpus), UTCQ_ENGINE_INIT(opts) {
  InitInstruments();
}

QueryEngine::QueryEngine(const TierSource& tier, EngineOptions opts)
    : tier_(&tier), UTCQ_ENGINE_INIT(opts) {
  InitInstruments();
}

#undef UTCQ_ENGINE_INIT

void QueryEngine::InitInstruments() {
  obs::MetricRegistry& reg =
      opts_.registry != nullptr ? *opts_.registry : *owned_registry_;
  queries_ = &reg.GetCounter("serve.engine.queries");
  batches_ = &reg.GetCounter("serve.engine.batches");
  partial_queries_ = &reg.GetCounter("serve.engine.partial_queries");
  decode_bytes_partial_ = &reg.GetCounter("serve.engine.decode_bytes_partial");
  sync_seeks_ = &reg.GetCounter("serve.engine.sync_seeks");
  latency_where_ = &reg.GetHistogram("serve.engine.latency_ns.where");
  latency_when_ = &reg.GetHistogram("serve.engine.latency_ns.when");
  latency_range_ = &reg.GetHistogram("serve.engine.latency_ns.range");
  decode_bytes_ = &reg.GetHistogram("serve.engine.decode_bytes");
  batch_size_ = &reg.GetHistogram("serve.engine.batch_size");
}

size_t QueryEngine::num_trajectories() const {
  if (tier_ != nullptr) return tier_->Acquire()->num_trajectories();
  return sharded_ != nullptr
             ? sharded_->num_trajectories()
             : single_->decoder().view().num_trajectories();
}

size_t QueryEngine::TotalOf(const TierSnapshot* snap) const {
  return snap != nullptr ? snap->num_trajectories() : num_trajectories();
}

QueryEngine::Target QueryEngine::Resolve(uint32_t global,
                                         const TierSnapshot* snap) const {
  if (snap != nullptr) {
    const size_t sealed_n = snap->sealed_count();
    if (global < sealed_n) {
      const auto [s, local] = snap->sealed->Route(global);
      return {&snap->sealed->shard_queries(s), s, local,
              CacheKey(kTierKeyShard, global)};
    }
    const uint32_t local = global - static_cast<uint32_t>(sealed_n);
    return {&snap->live->queries(), kTierKeyShard, local,
            CacheKey(kTierKeyShard, global)};
  }
  if (sharded_ != nullptr) {
    const auto [s, local] = sharded_->Route(global);
    return {&sharded_->shard_queries(s), s, local, CacheKey(s, local)};
  }
  return {single_, 0, global, CacheKey(0, global)};
}

std::shared_ptr<const traj::DecodedTraj> QueryEngine::Pin(
    const Target& target, PinAgg* agg) {
  const core::UtcqQueryProcessor* qp = target.qp;
  const uint32_t local = target.local;
  DecodedTrajCache::PinOutcome outcome;
  auto dt = cache_.GetOrDecode(
      target.cache_key,
      [qp, local] { return qp->decoder().DecodeTraj(local); }, &outcome);
  if (agg != nullptr && !outcome.hit) {
    common::MutexLock lock(agg->mu);
    agg->decode_bytes += outcome.decoded_bytes;
    agg->misses += 1;
  }
  return dt;
}

void QueryEngine::RecordPartial(const core::QueryStats& qs, PinAgg* agg) {
  const uint64_t bytes = (qs.stream_bits_read + 7) / 8;
  partial_queries_->Increment();
  decode_bytes_partial_->Add(bytes);
  sync_seeks_->Add(qs.sync_seeks);
  if (agg != nullptr && bytes > 0) {
    common::MutexLock lock(agg->mu);
    agg->decode_bytes += bytes;
  }
}

void QueryEngine::FinishQuery(const QueryRequest& req, uint64_t latency_ns,
                              PinAgg& agg) {
  LatencyFor(req.kind).Record(latency_ns);
  uint64_t decode_bytes = 0;
  uint64_t misses = 0;
  {
    common::MutexLock lock(agg.mu);
    decode_bytes = agg.decode_bytes;
    misses = agg.misses;
  }
  decode_bytes_->Record(decode_bytes);

  const uint64_t threshold_ns = opts_.slow_query_threshold_us * 1000;
  if (threshold_ns == 0 || latency_ns < threshold_ns ||
      opts_.slow_query_log_size == 0) {
    return;
  }
  SlowQuery entry;
  entry.kind = req.kind;
  entry.traj = req.kind == QueryKind::kRange ? UINT32_MAX : req.traj;
  entry.latency_us = static_cast<double>(latency_ns) / 1000.0;
  entry.decode_bytes = decode_bytes;
  entry.cache_hit = misses == 0;
  common::MutexLock lock(slow_mu_);
  if (slow_.size() < opts_.slow_query_log_size) {
    slow_.push_back(entry);
    return;
  }
  // Full: keep the N worst by displacing the fastest retained entry.
  auto fastest = std::min_element(
      slow_.begin(), slow_.end(), [](const SlowQuery& a, const SlowQuery& b) {
        return a.latency_us < b.latency_us;
      });
  if (fastest->latency_us < entry.latency_us) *fastest = entry;
}

std::vector<SlowQuery> QueryEngine::slow_queries() const {
  std::vector<SlowQuery> out;
  {
    common::MutexLock lock(slow_mu_);
    out = slow_;
  }
  std::sort(out.begin(), out.end(),
            [](const SlowQuery& a, const SlowQuery& b) {
              return a.latency_us > b.latency_us;
            });
  return out;
}

std::vector<traj::WhereHit> QueryEngine::Where(uint32_t traj_idx,
                                               traj::Timestamp t,
                                               double alpha) {
  return Execute(QueryRequest::MakeWhere(traj_idx, t, alpha)).where;
}

std::vector<traj::WhenHit> QueryEngine::When(uint32_t traj_idx,
                                             network::EdgeId edge, double rd,
                                             double alpha) {
  return Execute(QueryRequest::MakeWhen(traj_idx, edge, rd, alpha)).when;
}

traj::RangeResult QueryEngine::Range(const network::Rect& region,
                                     traj::Timestamp tq, double alpha) {
  return Execute(QueryRequest::MakeRange(region, tq, alpha)).range;
}

QueryResult QueryEngine::Execute(const QueryRequest& req) {
  std::shared_ptr<const TierSnapshot> snap;
  if (tier_ != nullptr) snap = tier_->Acquire();
  return ExecuteOne(req, opts_.num_threads, snap.get());
}

QueryResult QueryEngine::ExecuteOne(const QueryRequest& req,
                                    unsigned range_threads,
                                    const TierSnapshot* snap) {
  const uint64_t start_ns = clock_->NowNanos();
  PinAgg agg;
  QueryResult result;
  result.kind = req.kind;
  // A server-shaped API sees untrusted trajectory ids: out-of-range point
  // queries answer empty instead of indexing past the routing table.
  const bool routable =
      req.kind == QueryKind::kRange || req.traj < TotalOf(snap);
  if (routable) {
    switch (req.kind) {
      case QueryKind::kWhere: {
        const Target target = Resolve(req.traj, snap);
        // The uncached path rejects an out-of-window t from meta alone;
        // pinning first would turn that O(1) rejection into a full decode.
        const core::TrajMeta& meta =
            target.qp->decoder().view().meta(target.local);
        if (req.t < meta.t_first || req.t > meta.t_last) break;
        if (PartialActive()) {
          // Seek path: bracket through the sync table and decode only the
          // qualifying instances — never the cache (a partial expansion
          // cached under the full-decode key would poison later hits).
          core::QueryStats qs;
          result.where = target.qp->Where(target.local, req.t, req.alpha, &qs);
          RecordPartial(qs, &agg);
          break;
        }
        const auto dt = Pin(target, &agg);
        result.where = target.qp->Where(target.local, req.t, req.alpha, *dt);
        break;
      }
      case QueryKind::kWhen: {
        const Target target = Resolve(req.traj, snap);
        // Same principle as kWhere: the uncached path rejects a trajectory
        // with no StIU tuples near the edge from the index alone (Lemma 1
        // full skip) — keep that O(index) rejection ahead of the decode.
        // Accepted edges re-walk this tuple prefix inside When's group
        // construction; that duplicate index scan is orders cheaper than
        // the decode the rejection avoids.
        if (!target.qp->MayPassEdge(target.local, req.edge)) break;
        if (PartialActive()) {
          core::QueryStats qs;
          result.when =
              target.qp->When(target.local, req.edge, req.rd, req.alpha, &qs);
          RecordPartial(qs, &agg);
          break;
        }
        const auto dt = Pin(target, &agg);
        result.when =
            target.qp->When(target.local, req.edge, req.rd, req.alpha, *dt);
        break;
      }
      case QueryKind::kRange:
        result.range = RangeInternal(req.region, req.t, req.alpha,
                                     range_threads, snap, &agg);
        break;
    }
  }
  queries_->Increment();
  const uint64_t now_ns = clock_->NowNanos();
  FinishQuery(req, now_ns > start_ns ? now_ns - start_ns : 0, agg);
  return result;
}

traj::RangeResult QueryEngine::RangeInternal(const network::Rect& region,
                                             traj::Timestamp tq, double alpha,
                                             unsigned num_threads,
                                             const TierSnapshot* snap,
                                             PinAgg* agg) {
  if (PartialActive()) {
    // Cold bracket: no provider, so surviving members decode inline from
    // the bitstreams (BracketTime seeks through the sync tables) and the
    // cache is neither consulted nor populated.
    core::QueryStats qs;
    traj::RangeResult out;
    if (snap != nullptr) {
      if (snap->sealed != nullptr) {
        out = snap->sealed->Range(region, tq, alpha, &qs, num_threads);
      }
      if (snap->live != nullptr) {
        const uint32_t base = static_cast<uint32_t>(snap->sealed_count());
        for (const uint32_t local :
             snap->live->queries().Range(region, tq, alpha, &qs)) {
          out.push_back(base + local);
        }
      }
    } else if (sharded_ != nullptr) {
      out = sharded_->Range(region, tq, alpha, &qs, num_threads);
    } else {
      out = single_->Range(region, tq, alpha, &qs);
    }
    RecordPartial(qs, agg);
    return out;
  }
  if (snap != nullptr) {
    // Sealed fan-out first, then the live tail; live hits are offset to
    // global ids, and since every live id exceeds every sealed id the
    // concatenation is already globally sorted.
    traj::RangeResult merged;
    if (snap->sealed != nullptr) {
      merged = snap->sealed->Range(
          region, tq, alpha, nullptr, num_threads,
          [this, snap, agg](uint32_t s, uint32_t local) {
            const uint32_t global =
                snap->sealed->manifest().shards[s].members[local];
            return Pin({&snap->sealed->shard_queries(s), s, local,
                        CacheKey(kTierKeyShard, global)},
                       agg);
          });
    }
    if (snap->live != nullptr) {
      const uint32_t base = static_cast<uint32_t>(snap->sealed_count());
      const traj::RangeResult live_hits = snap->live->queries().Range(
          region, tq, alpha, [this, snap, base, agg](uint32_t local) {
            return Pin({&snap->live->queries(), kTierKeyShard, local,
                        CacheKey(kTierKeyShard, base + local)},
                       agg);
          });
      for (const uint32_t local : live_hits) merged.push_back(base + local);
    }
    return merged;
  }
  if (sharded_ != nullptr) {
    return sharded_->Range(
        region, tq, alpha, nullptr, num_threads,
        [this, agg](uint32_t s, uint32_t local) {
          return Pin({&sharded_->shard_queries(s), s, local,
                      CacheKey(s, local)},
                     agg);
        });
  }
  return single_->Range(region, tq, alpha, [this, agg](uint32_t j) {
    return Pin({single_, 0, j, CacheKey(0, j)}, agg);
  });
}

std::vector<QueryResult> QueryEngine::ExecuteBatch(
    const std::vector<QueryRequest>& requests) {
  std::vector<QueryResult> results(requests.size());

  // One snapshot for the whole batch: every request is answered against
  // the same live+sealed split even while ingestion seals and flushes.
  std::shared_ptr<const TierSnapshot> snap;
  if (tier_ != nullptr) snap = tier_->Acquire();

  // Group point queries by target trajectory so each trajectory's decode
  // (or cache fetch) happens once per batch regardless of how requests
  // interleave. Ranges are their own work units.
  std::vector<std::pair<uint32_t, std::vector<uint32_t>>> groups;
  std::unordered_map<uint32_t, size_t> group_of;
  std::vector<uint32_t> ranges;
  const size_t total = TotalOf(snap.get());
  for (uint32_t i = 0; i < requests.size(); ++i) {
    if (requests[i].kind == QueryKind::kRange) {
      ranges.push_back(i);
      continue;
    }
    if (requests[i].traj >= total) {  // untrusted id: answer empty
      results[i].kind = requests[i].kind;
      continue;
    }
    const auto [it, inserted] =
        group_of.try_emplace(requests[i].traj, groups.size());
    if (inserted) groups.push_back({requests[i].traj, {}});
    groups[it->second].second.push_back(i);
  }

  // Ranges first: ParallelFor hands out indices in order, and the ranges
  // are the long units — starting them immediately lets the cheap groups
  // fill the remaining worker time instead of a late Range gating the
  // whole batch (longest-processing-time-first). A lone unit cannot
  // saturate the workers, so only then does the nested fan-out get them.
  const size_t units = groups.size() + ranges.size();
  const unsigned range_threads = units <= 1 ? opts_.num_threads : 1;
  common::ParallelFor(units, opts_.num_threads, [&](size_t u) {
    if (u >= ranges.size()) {
      const auto& [traj_idx, members] = groups[u - ranges.size()];
      const Target target = Resolve(traj_idx, snap.get());
      const core::TrajMeta& meta =
          target.qp->decoder().view().meta(target.local);
      // Pinned by the first request that survives its cheap rejection —
      // the decode lands in that request's latency sample and pin
      // attribution, matching Execute()'s accounting, and a group of
      // all-rejected requests never decodes at all.
      std::shared_ptr<const traj::DecodedTraj> dt;
      for (const uint32_t i : members) {
        const QueryRequest& req = requests[i];
        const uint64_t start_ns = clock_->NowNanos();
        PinAgg agg;
        const auto pinned = [&]() -> const traj::DecodedTraj& {
          if (dt == nullptr) dt = Pin(target, &agg);
          return *dt;
        };
        results[i].kind = req.kind;
        if (PartialActive()) {
          // Same uncached calls as Execute()'s partial branch; requests
          // the cheap meta/index rejection dismisses don't count as
          // partial queries there either.
          core::QueryStats qs;
          bool attempted = false;
          if (req.kind == QueryKind::kWhere) {
            if (req.t >= meta.t_first && req.t <= meta.t_last) {
              results[i].where =
                  target.qp->Where(target.local, req.t, req.alpha, &qs);
              attempted = true;
            }
          } else if (target.qp->MayPassEdge(target.local, req.edge)) {
            results[i].when = target.qp->When(target.local, req.edge, req.rd,
                                              req.alpha, &qs);
            attempted = true;
          }
          if (attempted) RecordPartial(qs, &agg);
        } else if (req.kind == QueryKind::kWhere) {
          if (req.t >= meta.t_first && req.t <= meta.t_last) {
            results[i].where =
                target.qp->Where(target.local, req.t, req.alpha, pinned());
          }
        } else if (target.qp->MayPassEdge(target.local, req.edge)) {
          results[i].when = target.qp->When(target.local, req.edge, req.rd,
                                            req.alpha, pinned());
        }
        const uint64_t now_ns = clock_->NowNanos();
        FinishQuery(req, now_ns > start_ns ? now_ns - start_ns : 0, agg);
      }
    } else {
      const uint32_t i = ranges[u];
      const QueryRequest& req = requests[i];
      const uint64_t start_ns = clock_->NowNanos();
      PinAgg agg;
      results[i].kind = req.kind;
      results[i].range = RangeInternal(req.region, req.t, req.alpha,
                                       range_threads, snap.get(), &agg);
      const uint64_t now_ns = clock_->NowNanos();
      FinishQuery(req, now_ns > start_ns ? now_ns - start_ns : 0, agg);
    }
  });

  queries_->Add(requests.size());
  batches_->Increment();
  batch_size_->Record(requests.size());
  return results;
}

EngineStats QueryEngine::stats() const {
  EngineStats out;
  out.queries = queries_->value();
  out.batches = batches_->value();
  const DecodedTrajCache::Stats cache = cache_.stats();
  out.cache_hits = cache.hits;
  out.cache_misses = cache.misses;
  out.cache_evictions = cache.evictions;
  out.bytes_decoded = cache.decoded_bytes;
  out.partial_queries = partial_queries_->value();
  out.decode_bytes_partial = decode_bytes_partial_->value();
  out.sync_seeks = sync_seeks_->value();
  out.cache_resident_bytes = cache.resident_bytes;
  out.cache_resident_entries = cache.resident_entries;

  obs::HistogramSnapshot merged = latency_where_->Snapshot();
  merged.MergeFrom(latency_when_->Snapshot());
  merged.MergeFrom(latency_range_->Snapshot());
  out.p50_latency_us = merged.p50() / 1000.0;
  out.p99_latency_us = merged.p99() / 1000.0;
  {
    common::MutexLock lock(slow_mu_);
    out.slow_queries = slow_.size();
  }
  return out;
}

}  // namespace utcq::serve
