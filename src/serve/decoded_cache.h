#ifndef UTCQ_SERVE_DECODED_CACHE_H_
#define UTCQ_SERVE_DECODED_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/memory_tracker.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "traj/decoded.h"

namespace utcq::serve {

/// Byte-budgeted, sharded LRU cache of decoded trajectories — the
/// amortization structure of the query-serving layer (DESIGN.md §9).
///
/// Keys are opaque 64-bit ids (the engine packs corpus-shard/local-index
/// pairs). The key space is partitioned across `num_shards` independent
/// LRU lists, each behind its own mutex, so concurrent readers of distinct
/// trajectories rarely contend; the decode itself always runs *outside*
/// the lock, so a slow decode never serializes the shard's hits. Each
/// cache shard accounts its resident bytes through a common::MemoryTracker
/// and evicts least-recently-used entries past its slice of the budget.
///
/// Values are shared_ptr-pinned: an entry handed to a query stays alive for
/// as long as the query holds it, even if the cache evicts it concurrently
/// — eviction drops the cache's reference, never the caller's.
///
/// Instrumented through obs (DESIGN.md §15): hits/misses/evictions/
/// decoded-bytes counters plus resident-bytes/entries gauges under
/// `serve.cache.*`, registered in `registry` (nullptr = a private registry,
/// keeping per-instance stats exact when many caches coexist in one
/// process, as in tests).
class DecodedTrajCache {
 public:
  /// `budget_bytes` is the total across shards (each shard gets an equal
  /// slice); 0 disables retention entirely (every lookup decodes).
  explicit DecodedTrajCache(size_t budget_bytes, uint32_t num_shards = 8,
                            obs::MetricRegistry* registry = nullptr);

  DecodedTrajCache(const DecodedTrajCache&) = delete;
  DecodedTrajCache& operator=(const DecodedTrajCache&) = delete;

  using DecodeFn = std::function<traj::DecodedTraj()>;

  /// What one GetOrDecode did — per-query cost attribution for the
  /// engine's decode-bytes histogram and slow-query log.
  struct PinOutcome {
    bool hit = false;
    /// Bytes this call materialized (0 on a hit; also counts a decode
    /// discarded because a concurrent miss inserted first).
    uint64_t decoded_bytes = 0;
  };

  /// Returns the cached entry for `key`, decoding (and inserting) on miss.
  /// When two threads miss the same key concurrently both decode, and the
  /// first insert wins — wasted work under a thundering herd, but no lock
  /// is ever held across a decode.
  std::shared_ptr<const traj::DecodedTraj> GetOrDecode(
      uint64_t key, const DecodeFn& decode, PinOutcome* outcome = nullptr);

  /// Lookup without decode; nullptr on miss. Does not touch hit/miss
  /// counters (introspection, tests).
  std::shared_ptr<const traj::DecodedTraj> Peek(uint64_t key) const;

  void Clear();

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    /// Total bytes materialized by misses (decode volume, monotone).
    uint64_t decoded_bytes = 0;
    /// Currently resident.
    size_t resident_bytes = 0;
    size_t resident_entries = 0;
  };
  Stats stats() const;

  size_t budget_bytes() const { return budget_per_shard_ * shards_.size(); }

 private:
  struct Entry {
    uint64_t key = 0;
    std::shared_ptr<const traj::DecodedTraj> value;
    size_t bytes = 0;
  };
  struct Shard {
    mutable common::Mutex mu;
    /// front = most recently used
    std::list<Entry> lru UTCQ_GUARDED_BY(mu);
    std::unordered_map<uint64_t, std::list<Entry>::iterator> index
        UTCQ_GUARDED_BY(mu);
    /// Byte accounting moves strictly with lru/index mutations, so it
    /// shares their guard — the budget check reads it under the same lock.
    common::MemoryTracker tracker UTCQ_GUARDED_BY(mu);
  };

  Shard& ShardFor(uint64_t key) const;
  /// Evicts from the back of `shard` until it fits its budget slice.
  void EvictToBudget(Shard& shard) UTCQ_REQUIRES(shard.mu);

  /// Declared before the instrument pointers so they outlive every use.
  std::unique_ptr<obs::MetricRegistry> owned_registry_;
  obs::Counter* hits_ = nullptr;
  obs::Counter* misses_ = nullptr;
  obs::Counter* evictions_ = nullptr;
  obs::Counter* decoded_bytes_ = nullptr;
  obs::Gauge* resident_bytes_ = nullptr;
  obs::Gauge* resident_entries_ = nullptr;

  size_t budget_per_shard_ = 0;
  mutable std::vector<Shard> shards_;
};

}  // namespace utcq::serve

#endif  // UTCQ_SERVE_DECODED_CACHE_H_
