#ifndef UTCQ_SERVE_TIER_H_
#define UTCQ_SERVE_TIER_H_

#include <cstdint>
#include <memory>

#include "core/query.h"
#include "shard/sharded.h"

namespace utcq::serve {

/// Read-side of a not-yet-flushed live shard: a query processor over the
/// live trajectories (local indices 0..count) plus ownership of everything
/// it borrows — an implementation (the ingest layer's live-shard snapshot)
/// is immutable once handed out, so queries against it are lock-free.
class LiveTail {
 public:
  virtual ~LiveTail() = default;
  virtual const core::UtcqQueryProcessor& queries() const = 0;
  virtual uint32_t count() const = 0;
};

/// One snapshot-consistent view of a live+sealed streaming tier
/// (DESIGN.md §10): the sealed archive set covers global trajectory ids
/// [0, sealed_count), the live tail covers [sealed_count, sealed_count +
/// live_count) — together exactly the trajectories sealed so far, each id
/// in precisely one part. Both members are immutable; the shared_ptrs keep
/// them alive across a concurrent flush swapping the tier underneath.
struct TierSnapshot {
  std::shared_ptr<const shard::ShardedCorpus> sealed;  // null before flush 1
  std::shared_ptr<const LiveTail> live;                // null when tail empty

  size_t sealed_count() const {
    return sealed != nullptr ? sealed->num_trajectories() : 0;
  }
  size_t live_count() const { return live != nullptr ? live->count() : 0; }
  size_t num_trajectories() const { return sealed_count() + live_count(); }
};

/// What a QueryEngine in live+sealed mode serves from: each Acquire returns
/// a consistent TierSnapshot (sealed set and live tail taken under one
/// lock), so a query — or a whole batch — sees the tier at one instant no
/// matter how ingestion and flushing race it.
class TierSource {
 public:
  virtual ~TierSource() = default;
  virtual std::shared_ptr<const TierSnapshot> Acquire() const = 0;
};

}  // namespace utcq::serve

#endif  // UTCQ_SERVE_TIER_H_
