#include "serve/decoded_cache.h"

#include <algorithm>
#include <utility>

#include "common/rng.h"

namespace utcq::serve {

DecodedTrajCache::DecodedTrajCache(size_t budget_bytes, uint32_t num_shards)
    : shards_(std::max<uint32_t>(1, num_shards)) {
  budget_per_shard_ = budget_bytes / shards_.size();
}

DecodedTrajCache::Shard& DecodedTrajCache::ShardFor(uint64_t key) const {
  // Mixed so sequential (shard, local) keys spread across the cache shards
  // instead of clustering on a few mutexes.
  return shards_[common::SplitMix64(key) % shards_.size()];
}

void DecodedTrajCache::EvictToBudget(Shard& shard) {
  while (shard.tracker.current_bytes() > budget_per_shard_ &&
         !shard.lru.empty()) {
    const Entry& victim = shard.lru.back();
    shard.tracker.Release(victim.bytes);
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

std::shared_ptr<const traj::DecodedTraj> DecodedTrajCache::GetOrDecode(
    uint64_t key, const DecodeFn& decode) {
  Shard& shard = ShardFor(key);
  {
    common::MutexLock lock(shard.mu);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      ++shard.hits;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return it->second->value;
    }
    ++shard.misses;
  }

  // Decode unlocked: a multi-millisecond bitstream walk must not serialize
  // every other reader mapped to this shard.
  auto value =
      std::make_shared<const traj::DecodedTraj>(decode());
  const size_t bytes = value->ApproxBytes();

  common::MutexLock lock(shard.mu);
  shard.decoded_bytes += bytes;
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // A concurrent miss inserted first; keep the resident copy so pins
    // converge on one allocation.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->value;
  }
  shard.lru.push_front(Entry{key, value, bytes});
  shard.index.emplace(key, shard.lru.begin());
  shard.tracker.Add(bytes);
  // The fresh entry sits at the front; under a tiny budget it may itself be
  // evicted (resident set stays empty) — the returned pin keeps it alive
  // for this caller regardless.
  EvictToBudget(shard);
  return value;
}

std::shared_ptr<const traj::DecodedTraj> DecodedTrajCache::Peek(
    uint64_t key) const {
  const Shard& shard = ShardFor(key);
  common::MutexLock lock(shard.mu);
  const auto it = shard.index.find(key);
  return it != shard.index.end() ? it->second->value : nullptr;
}

void DecodedTrajCache::Clear() {
  for (Shard& shard : shards_) {
    common::MutexLock lock(shard.mu);
    shard.lru.clear();
    shard.index.clear();
    shard.tracker.Reset();
  }
}

DecodedTrajCache::Stats DecodedTrajCache::stats() const {
  Stats total;
  for (const Shard& shard : shards_) {
    common::MutexLock lock(shard.mu);
    total.hits += shard.hits;
    total.misses += shard.misses;
    total.evictions += shard.evictions;
    total.decoded_bytes += shard.decoded_bytes;
    total.resident_bytes += shard.tracker.current_bytes();
    total.resident_entries += shard.lru.size();
  }
  return total;
}

}  // namespace utcq::serve
