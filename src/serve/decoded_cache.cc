#include "serve/decoded_cache.h"

#include <algorithm>
#include <utility>

#include "common/rng.h"

namespace utcq::serve {

DecodedTrajCache::DecodedTrajCache(size_t budget_bytes, uint32_t num_shards,
                                   obs::MetricRegistry* registry)
    : shards_(std::max<uint32_t>(1, num_shards)) {
  if (registry == nullptr) {
    owned_registry_ = std::make_unique<obs::MetricRegistry>();
    registry = owned_registry_.get();
  }
  hits_ = &registry->GetCounter("serve.cache.hits");
  misses_ = &registry->GetCounter("serve.cache.misses");
  evictions_ = &registry->GetCounter("serve.cache.evictions");
  decoded_bytes_ = &registry->GetCounter("serve.cache.decoded_bytes");
  resident_bytes_ = &registry->GetGauge("serve.cache.resident_bytes");
  resident_entries_ = &registry->GetGauge("serve.cache.resident_entries");
  budget_per_shard_ = budget_bytes / shards_.size();
}

DecodedTrajCache::Shard& DecodedTrajCache::ShardFor(uint64_t key) const {
  // Mixed so sequential (shard, local) keys spread across the cache shards
  // instead of clustering on a few mutexes.
  return shards_[common::SplitMix64(key) % shards_.size()];
}

void DecodedTrajCache::EvictToBudget(Shard& shard) {
  while (shard.tracker.current_bytes() > budget_per_shard_ &&
         !shard.lru.empty()) {
    const Entry& victim = shard.lru.back();
    shard.tracker.Release(victim.bytes);
    resident_bytes_->Sub(static_cast<int64_t>(victim.bytes));
    resident_entries_->Sub(1);
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    evictions_->Increment();
  }
}

std::shared_ptr<const traj::DecodedTraj> DecodedTrajCache::GetOrDecode(
    uint64_t key, const DecodeFn& decode, PinOutcome* outcome) {
  Shard& shard = ShardFor(key);
  {
    common::MutexLock lock(shard.mu);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      hits_->Increment();
      if (outcome != nullptr) outcome->hit = true;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return it->second->value;
    }
    misses_->Increment();
  }

  // Decode unlocked: a multi-millisecond bitstream walk must not serialize
  // every other reader mapped to this shard.
  auto value =
      std::make_shared<const traj::DecodedTraj>(decode());
  const size_t bytes = value->ApproxBytes();
  decoded_bytes_->Add(bytes);
  if (outcome != nullptr) {
    outcome->hit = false;
    outcome->decoded_bytes = bytes;
  }

  common::MutexLock lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // A concurrent miss inserted first; keep the resident copy so pins
    // converge on one allocation.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->value;
  }
  shard.lru.push_front(Entry{key, value, bytes});
  shard.index.emplace(key, shard.lru.begin());
  shard.tracker.Add(bytes);
  resident_bytes_->Add(static_cast<int64_t>(bytes));
  resident_entries_->Add(1);
  // The fresh entry sits at the front; under a tiny budget it may itself be
  // evicted (resident set stays empty) — the returned pin keeps it alive
  // for this caller regardless.
  EvictToBudget(shard);
  return value;
}

std::shared_ptr<const traj::DecodedTraj> DecodedTrajCache::Peek(
    uint64_t key) const {
  const Shard& shard = ShardFor(key);
  common::MutexLock lock(shard.mu);
  const auto it = shard.index.find(key);
  return it != shard.index.end() ? it->second->value : nullptr;
}

void DecodedTrajCache::Clear() {
  for (Shard& shard : shards_) {
    common::MutexLock lock(shard.mu);
    resident_bytes_->Sub(static_cast<int64_t>(shard.tracker.current_bytes()));
    resident_entries_->Sub(static_cast<int64_t>(shard.lru.size()));
    shard.lru.clear();
    shard.index.clear();
    shard.tracker.Reset();
  }
}

DecodedTrajCache::Stats DecodedTrajCache::stats() const {
  Stats total;
  total.hits = hits_->value();
  total.misses = misses_->value();
  total.evictions = evictions_->value();
  total.decoded_bytes = decoded_bytes_->value();
  for (const Shard& shard : shards_) {
    common::MutexLock lock(shard.mu);
    total.resident_bytes += shard.tracker.current_bytes();
    total.resident_entries += shard.lru.size();
  }
  return total;
}

}  // namespace utcq::serve
