#include "verify/workload.h"

#include <algorithm>
#include <utility>

#include "network/generator.h"
#include "traj/generator.h"

namespace utcq::verify {

using traj::Timestamp;

WorkloadGen::WorkloadGen(uint64_t seed, WorkloadOptions opts)
    : seed_(seed), opts_(opts), rng_(seed) {}

traj::UncertainTrajectory WorkloadGen::SingleEdge(
    const network::RoadNetwork& net) {
  traj::UncertainTrajectory tu;
  const auto e = static_cast<network::EdgeId>(
      rng_.UniformInt(0, static_cast<int64_t>(net.num_edges()) - 1));
  const Timestamp t0 = rng_.UniformInt(0, traj::kSecondsPerDay / 2);
  tu.times = {t0, t0 + rng_.UniformInt(1, 600)};
  traj::TrajectoryInstance inst;
  inst.path = {e};
  const double rd0 = rng_.Uniform(0.0, 0.5);
  inst.locations = {{0, rd0}, {0, rd0 + rng_.Uniform(0.0, 0.5)}};
  inst.probability = 1.0;
  tu.instances = {inst};
  return tu;
}

traj::UncertainTrajectory WorkloadGen::ZeroDuration(
    const network::RoadNetwork& net) {
  traj::UncertainTrajectory tu;
  const auto e = static_cast<network::EdgeId>(
      rng_.UniformInt(0, static_cast<int64_t>(net.num_edges()) - 1));
  tu.times = {rng_.UniformInt(0, traj::kSecondsPerDay - 1)};
  traj::TrajectoryInstance inst;
  inst.path = {e};
  inst.locations = {{0, rng_.Uniform(0.0, 1.0)}};
  inst.probability = 1.0;
  tu.instances = {inst};
  return tu;
}

void WorkloadGen::AppendDegenerates(Workload& w) {
  // Valid but extreme shapes: the single-point, single-edge and max-length
  // trajectories the paper's pipeline must carry without special-casing.
  w.corpus.push_back(SingleEdge(w.net));
  w.corpus.push_back(ZeroDuration(w.net));
  {
    traj::DatasetProfile longest = w.profile;
    longest.mean_edges = opts_.max_length_points / 2.0;
    longest.min_edges = static_cast<int>(opts_.max_length_points / 2);
    longest.max_edges = static_cast<int>(opts_.max_length_points);
    longest.mean_instances = 2.0;
    longest.max_instances = 3;
    traj::UncertainTrajectoryGenerator gen(
        w.net, longest, static_cast<uint64_t>(rng_.UniformInt(1, 1 << 30)));
    w.corpus.push_back(gen.Generate());
  }
  for (size_t j = 0; j < w.corpus.size(); ++j) w.corpus[j].id = j;

  // Invalid shapes Validate must reject: duplicate timestamps and
  // non-monotone location ordering.
  {
    traj::UncertainTrajectory dup = w.corpus.front();
    if (dup.times.size() >= 2) dup.times[1] = dup.times[0];
    w.invalid.push_back(std::move(dup));
  }
  for (const auto& tu : w.corpus) {
    if (tu.instances.front().locations.size() < 2) continue;
    traj::UncertainTrajectory unordered = tu;
    auto& locs = unordered.instances.front().locations;
    if (locs.front() == locs.back()) continue;
    std::swap(locs.front(), locs.back());
    w.invalid.push_back(std::move(unordered));
    break;
  }
}

void WorkloadGen::MakeQueries(Workload& w) {
  const auto bbox = w.net.bounding_box();
  const auto rand_traj = [&] {
    return static_cast<uint32_t>(
        rng_.UniformInt(0, static_cast<int64_t>(w.corpus.size()) - 1));
  };
  const auto rand_alpha = [&] {
    const int64_t kind = rng_.UniformInt(0, 9);
    if (kind == 0) return 0.0;              // everything qualifies
    if (kind == 1) return 1.2;              // nothing can qualify
    return rng_.Uniform(0.0, 1.0);
  };

  const auto add_point_queries = [&](uint32_t j) {
    const traj::UncertainTrajectory& tu = w.corpus[j];
    QueryCase where;
    where.kind = QueryCase::Kind::kWhere;
    where.traj = j;
    where.alpha = rand_alpha();
    switch (rng_.UniformInt(0, 4)) {
      case 0:
        where.t = tu.times.front();  // exact first sample
        break;
      case 1:
        where.t = tu.times.back();  // exact last sample
        break;
      case 2:
        where.t = tu.times.back() + rng_.UniformInt(1, 1000);  // past the end
        break;
      default:
        where.t = rng_.UniformInt(tu.times.front(), tu.times.back());
    }
    w.queries.push_back(where);

    QueryCase when;
    when.kind = QueryCase::Kind::kWhen;
    when.traj = j;
    when.alpha = rand_alpha();
    const auto& inst = tu.instances[static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(tu.instances.size()) - 1))];
    if (rng_.Bernoulli(0.6)) {
      // A position an instance demonstrably visits.
      const auto& loc = inst.locations[static_cast<size_t>(rng_.UniformInt(
          0, static_cast<int64_t>(inst.locations.size()) - 1))];
      when.edge = inst.path[loc.path_index];
      when.rd = loc.rd;
    } else {
      // An arbitrary position on the travelled path (often missed).
      when.edge = inst.path[static_cast<size_t>(
          rng_.UniformInt(0, static_cast<int64_t>(inst.path.size()) - 1))];
      when.rd = rng_.Uniform(0.0, 1.0);
    }
    w.queries.push_back(when);
  };

  // Every degenerate shape gets targeted point queries; the rest sample
  // uniformly.
  for (size_t back = 1; back <= 3 && back <= w.corpus.size(); ++back) {
    add_point_queries(static_cast<uint32_t>(w.corpus.size() - back));
  }
  for (uint32_t i = 0; i < opts_.num_point_queries; ++i) {
    add_point_queries(rand_traj());
  }

  // Out-of-range trajectory ids: every public API must answer empty.
  for (int i = 0; i < 2; ++i) {
    QueryCase q;
    q.kind = i == 0 ? QueryCase::Kind::kWhere : QueryCase::Kind::kWhen;
    q.traj = static_cast<uint32_t>(w.corpus.size()) +
             static_cast<uint32_t>(rng_.UniformInt(0, 5));
    q.t = rng_.UniformInt(0, traj::kSecondsPerDay - 1);
    q.edge = static_cast<network::EdgeId>(
        rng_.UniformInt(0, static_cast<int64_t>(w.net.num_edges()) - 1));
    q.rd = rng_.Uniform(0.0, 1.0);
    q.alpha = rng_.Uniform(0.0, 1.0);
    w.queries.push_back(q);
  }

  Timestamp t_min = 0;
  Timestamp t_max = traj::kSecondsPerDay - 1;
  if (!w.corpus.empty()) {
    t_min = w.corpus.front().times.front();
    t_max = w.corpus.front().times.back();
    for (const auto& tu : w.corpus) {
      t_min = std::min(t_min, tu.times.front());
      t_max = std::max(t_max, tu.times.back());
    }
  }
  for (uint32_t i = 0; i < opts_.num_range_queries; ++i) {
    QueryCase q;
    q.kind = QueryCase::Kind::kRange;
    // Range alpha stays strictly positive: at alpha == 0 the answer set is
    // defined by index reach, not by probability mass (any candidate
    // trivially satisfies mass >= 0), which no scan-based oracle can
    // reproduce.
    q.alpha = rng_.Uniform(0.05, 0.9);
    q.t = rng_.Bernoulli(0.85) ? rng_.UniformInt(t_min, t_max)
                               : t_max + rng_.UniformInt(1, 1000);
    const double cx = rng_.Uniform(bbox.min_x, bbox.max_x);
    const double cy = rng_.Uniform(bbox.min_y, bbox.max_y);
    const double span_x = bbox.max_x - bbox.min_x;
    const double half = rng_.Bernoulli(0.2)
                            ? span_x  // covers (almost) everything
                            : rng_.Uniform(span_x / 50.0, span_x / 3.0);
    q.region = {cx - half, cy - half, cx + half, cy + half};
    w.queries.push_back(q);
  }
}

Workload WorkloadGen::Generate() {
  Workload w;
  w.seed = seed_;
  const auto profiles = traj::AllProfiles();
  w.profile =
      profiles[static_cast<size_t>(rng_.UniformInt(0, 2))];
  const auto side = static_cast<uint32_t>(
      rng_.UniformInt(opts_.min_city_side, opts_.max_city_side));
  network::CityParams city = w.profile.city;
  city.rows = side;
  city.cols = side;
  w.net = network::GenerateCity(rng_, city);

  w.params.default_interval_s = w.profile.default_interval_s;
  w.params.eta_p = w.profile.eta_p;
  w.params.eta_d = w.profile.eta_d;
  w.params.num_pivots = rng_.Bernoulli(0.25) ? 2 : 1;
  // Dense sync tables (archive v3 seek path engaged on nearly every
  // bracket) or none at all (the pre-v3 scan) — both must answer
  // identically on every path, and the differential run covers both.
  w.params.t_sync_interval = rng_.Bernoulli(0.5) ? 2 : 0;

  traj::UncertainTrajectoryGenerator gen(
      w.net, w.profile, static_cast<uint64_t>(rng_.UniformInt(1, 1 << 30)));
  w.corpus = gen.GenerateCorpus(opts_.num_trajectories);
  AppendDegenerates(w);
  MakeQueries(w);
  return w;
}

}  // namespace utcq::verify
