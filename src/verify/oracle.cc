#include "verify/oracle.h"

#include <algorithm>
#include <optional>

#include "traj/interpolate.h"

namespace utcq::verify {

using network::Rect;
using traj::NetworkPosition;
using traj::Timestamp;
using traj::TrajectoryInstance;

namespace {

struct Bracket {
  size_t index = 0;
  Timestamp t0 = 0;
  Timestamp t1 = 0;
};

/// Naive forward scan for the bracketing samples i, i+1 with
/// times[i] <= t <= times[i+1]: the first i satisfying t <= times[i+1],
/// starting from the very beginning — the semantics the engines' partial
/// T decompression (UtcqDecoder::BracketTime seeded from a temporal tuple)
/// must agree with on any strictly increasing time sequence.
std::optional<Bracket> FindBracket(const std::vector<Timestamp>& times,
                                   Timestamp t) {
  if (times.empty() || t < times.front() || t > times.back()) {
    return std::nullopt;
  }
  if (times.size() == 1) return Bracket{0, times[0], times[0]};
  for (size_t i = 0; i + 1 < times.size(); ++i) {
    if (t <= times[i + 1]) return Bracket{i, times[i], times[i + 1]};
  }
  return std::nullopt;
}

/// Constant-speed interpolation between the bracketing locations — the same
/// arithmetic, in the same order, as the engines' PositionInBracket, built
/// on the shared traj:: helpers so positions agree to floating-point noise.
NetworkPosition PositionInBracket(const network::RoadNetwork& net,
                                  const TrajectoryInstance& inst,
                                  const Bracket& b, Timestamp t) {
  if (b.index + 1 >= inst.locations.size() || b.t1 <= b.t0) {
    const auto& loc =
        inst.locations[std::min(b.index, inst.locations.size() - 1)];
    return {inst.path[loc.path_index],
            loc.rd * net.edge(inst.path[loc.path_index]).length};
  }
  const double d0 = traj::PathOffsetOfLocation(net, inst, b.index);
  const double d1 = traj::PathOffsetOfLocation(net, inst, b.index + 1);
  const double f =
      static_cast<double>(t - b.t0) / static_cast<double>(b.t1 - b.t0);
  return traj::PositionAtPathOffset(net, inst, d0 + (d1 - d0) * f);
}

}  // namespace

Oracle::Oracle(const network::RoadNetwork& net,
               const traj::UncertainCorpus& corpus, double eta_d)
    : net_(net), corpus_(corpus), eta_d_(eta_d) {}

std::vector<traj::WhereHit> Oracle::Where(size_t traj_idx, Timestamp t,
                                          double alpha) const {
  std::vector<traj::WhereHit> hits;
  if (traj_idx >= corpus_.size()) return hits;
  const traj::UncertainTrajectory& tu = corpus_[traj_idx];
  const auto bracket = FindBracket(tu.times, t);
  if (!bracket.has_value()) return hits;
  for (size_t w = 0; w < tu.instances.size(); ++w) {
    const TrajectoryInstance& inst = tu.instances[w];
    if (inst.probability < alpha) continue;
    if (inst.locations.empty() || inst.path.empty()) continue;
    hits.push_back({static_cast<uint32_t>(w), inst.probability,
                    PositionInBracket(net_, inst, *bracket, t)});
  }
  return hits;
}

std::vector<traj::WhenHit> Oracle::When(size_t traj_idx, network::EdgeId edge,
                                        double rd, double alpha) const {
  std::vector<traj::WhenHit> hits;
  if (traj_idx >= corpus_.size()) return hits;
  const traj::UncertainTrajectory& tu = corpus_[traj_idx];
  // The engines evaluate lossily-coded relative distances, so they widen
  // the sampled span by the D quantization bound; apply the identical
  // widening to admit the identical borderline traversals.
  const double tol = 2.0 * eta_d_ * net_.edge(edge).length + 1e-6;
  for (size_t w = 0; w < tu.instances.size(); ++w) {
    const TrajectoryInstance& inst = tu.instances[w];
    if (inst.probability < alpha) continue;
    for (const Timestamp t :
         traj::TimesAtPosition(net_, inst, tu.times, edge, rd, tol)) {
      hits.push_back({static_cast<uint32_t>(w), inst.probability, t});
    }
  }
  return hits;
}

double Oracle::OverlapMass(size_t traj_idx, const Rect& region,
                           Timestamp tq) const {
  if (traj_idx >= corpus_.size()) return 0.0;
  const traj::UncertainTrajectory& tu = corpus_[traj_idx];
  const auto bracket = FindBracket(tu.times, tq);
  if (!bracket.has_value()) return 0.0;
  double mass = 0.0;
  for (const TrajectoryInstance& inst : tu.instances) {
    if (inst.locations.empty() || inst.path.empty()) continue;
    const NetworkPosition pos = PositionInBracket(net_, inst, *bracket, tq);
    const network::Vertex xy = net_.PointOnEdge(pos.edge, pos.ndist);
    if (region.Contains(xy.x, xy.y)) mass += inst.probability;
  }
  return mass;
}

traj::RangeResult Oracle::Range(const Rect& region, Timestamp tq,
                                double alpha) const {
  traj::RangeResult result;
  for (size_t j = 0; j < corpus_.size(); ++j) {
    if (OverlapMass(j, region, tq) >= alpha) {
      result.push_back(static_cast<uint32_t>(j));
    }
  }
  return result;
}

}  // namespace utcq::verify
