#ifndef UTCQ_VERIFY_WORKLOAD_H_
#define UTCQ_VERIFY_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/corpus_meta.h"
#include "network/road_network.h"
#include "traj/profiles.h"
#include "traj/types.h"

namespace utcq::verify {

/// One query of a generated mix, in the union layout the serving layer uses
/// (the slot matching `kind` is meaningful, the rest stay default).
struct QueryCase {
  enum class Kind : uint8_t { kWhere, kWhen, kRange };

  Kind kind = Kind::kWhere;
  uint32_t traj = 0;         // where/when target (may be out of range!)
  traj::Timestamp t = 0;     // where time / range tq
  network::EdgeId edge = 0;  // when
  double rd = 0.0;           // when
  network::Rect region{};    // range
  double alpha = 0.0;
};

/// Everything one differential round runs on: a random road network, a
/// corpus mixing generator output with hand-built degenerate shapes, the
/// compression parameters, and a query mix that deliberately includes
/// boundary times, alpha extremes and out-of-range trajectory ids.
struct Workload {
  uint64_t seed = 0;
  network::RoadNetwork net;
  traj::DatasetProfile profile;
  core::UtcqParams params;
  /// Structurally valid trajectories (traj::Validate returns "") — the set
  /// every engine compresses and serves.
  traj::UncertainCorpus corpus;
  /// Degenerate trajectories Validate must reject (duplicate timestamps,
  /// unordered locations); the harness asserts the rejection and keeps
  /// them out of the compressed paths.
  traj::UncertainCorpus invalid;
  std::vector<QueryCase> queries;
};

struct WorkloadOptions {
  uint32_t min_city_side = 8;
  uint32_t max_city_side = 12;
  /// Generator-produced trajectories; the degenerate shapes are appended on
  /// top of these.
  uint32_t num_trajectories = 16;
  uint32_t num_point_queries = 10;  // one where + one when each
  uint32_t num_range_queries = 8;
  /// Point count of the max-length degenerate trajectory.
  uint32_t max_length_points = 120;
};

/// Seeded generator of complete differential workloads. Every random draw
/// routes through one common::Rng seeded once, so a workload is a pure
/// function of (seed, options) — the failure seed printed by the harness
/// reproduces the exact network, corpus and query mix.
class WorkloadGen {
 public:
  explicit WorkloadGen(uint64_t seed, WorkloadOptions opts = {});

  Workload Generate();

 private:
  /// Single-edge / zero-duration / max-length valid shapes plus the
  /// invalid ones; appended to the workload by Generate.
  void AppendDegenerates(Workload& w);
  traj::UncertainTrajectory SingleEdge(const network::RoadNetwork& net);
  traj::UncertainTrajectory ZeroDuration(const network::RoadNetwork& net);
  void MakeQueries(Workload& w);

  uint64_t seed_;
  WorkloadOptions opts_;
  common::Rng rng_;
};

}  // namespace utcq::verify

#endif  // UTCQ_VERIFY_WORKLOAD_H_
