#ifndef UTCQ_VERIFY_ORACLE_H_
#define UTCQ_VERIFY_ORACLE_H_

#include <vector>

#include "network/geometry.h"
#include "network/road_network.h"
#include "traj/query_types.h"
#include "traj/types.h"

namespace utcq::verify {

/// Brute-force reference implementations of the three probabilistic queries
/// (Definitions 10-12), the ground truth of the differential harness
/// (DESIGN.md §11). Deliberately naive: every query scans the raw
/// trajectory data front to back with no index, no pruning lemma, no cache
/// and no decoded-handle reuse, allocating fresh scratch per call. Being
/// slow and obvious is the point — there is nothing here that can share a
/// bug with the engines under test.
///
/// Hit-for-hit equality with the compressed engines holds when the oracle
/// scans the *decompressed* corpus (UtcqDecoder::DecompressAll output, or
/// the TED equivalent): compression quantizes probabilities and relative
/// distances, so the oracle must see the same post-quantization data the
/// engines reconstruct. What the differential harness then proves is that
/// the StIU index, the four pruning lemmas, partial decompression,
/// sharding, caching, batching and the live/sealed tier never change an
/// answer relative to a full scan of identical data.
class Oracle {
 public:
  /// `corpus` is scanned by reference and must outlive the oracle. `eta_d`
  /// is the relative-distance error bound of the engine under test
  /// (UtcqParams::eta_d / TedParams::eta_d): When widens its sampled span
  /// by the same quantization tolerance the engines apply, so borderline
  /// traversals are admitted identically on both sides.
  Oracle(const network::RoadNetwork& net, const traj::UncertainCorpus& corpus,
         double eta_d);

  /// where(Tu^j, t, alpha): one hit per instance with probability >= alpha,
  /// in original instance order. Out-of-range `traj_idx` answers empty —
  /// the contract every public query API is held to.
  std::vector<traj::WhereHit> Where(size_t traj_idx, traj::Timestamp t,
                                    double alpha) const;

  /// when(Tu^j, <edge, rd>, alpha): every traversal timestamp of every
  /// instance with probability >= alpha, in original instance order.
  std::vector<traj::WhenHit> When(size_t traj_idx, network::EdgeId edge,
                                  double rd, double alpha) const;

  /// range(Tu, RE, tq, alpha): trajectory ids (ascending) whose overlap
  /// probability mass at tq reaches alpha.
  traj::RangeResult Range(const network::Rect& region, traj::Timestamp tq,
                          double alpha) const;

  /// Overlap probability mass of trajectory `traj_idx` with `region` at
  /// `tq` — the quantity Range thresholds against alpha. Exposed so the
  /// differential driver can recognize borderline workloads where
  /// floating-point summation order legitimately decides the comparison.
  double OverlapMass(size_t traj_idx, const network::Rect& region,
                     traj::Timestamp tq) const;

  const traj::UncertainCorpus& corpus() const { return corpus_; }
  double eta_d() const { return eta_d_; }

 private:
  const network::RoadNetwork& net_;
  const traj::UncertainCorpus& corpus_;
  double eta_d_;
};

}  // namespace utcq::verify

#endif  // UTCQ_VERIFY_ORACLE_H_
