#ifndef UTCQ_COMMON_WAH_BITMAP_H_
#define UTCQ_COMMON_WAH_BITMAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace utcq::common {

/// Word-Aligned Hybrid (WAH) bitmap compression [33], the bitmap codec TED
/// [40] applies to time-flag bit-strings.
///
/// The input bit-string is split into 31-bit groups. Runs of all-0 or all-1
/// groups become *fill words* (msb=1, next bit = fill value, 30-bit run
/// length in groups); other groups become *literal words* (msb=0, 31 payload
/// bits). The paper's experimental baseline omits this codec ("time
/// consuming"); we provide it for the ablation benches and as an optional
/// UTCQ extension.
class WahBitmap {
 public:
  /// Compresses `bits` (each element 0/1).
  static WahBitmap Compress(const std::vector<uint8_t>& bits);

  /// Decompresses back to the original bit vector.
  std::vector<uint8_t> Decompress() const;

  /// Size of the compressed form in bits (32 per word + 32 for the length).
  size_t size_bits() const { return 32 * (words_.size() + 1); }

  size_t original_size_bits() const { return original_bits_; }
  const std::vector<uint32_t>& words() const { return words_; }

 private:
  std::vector<uint32_t> words_;
  size_t original_bits_ = 0;
};

}  // namespace utcq::common

#endif  // UTCQ_COMMON_WAH_BITMAP_H_
