#ifndef UTCQ_COMMON_RNG_H_
#define UTCQ_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace utcq::common {

/// splitmix64 finalizer: full-avalanche mix of a 64-bit value. The one
/// integer hash of the codebase — shard assignment and cache-shard
/// selection both key on it, so sequential ids spread uniformly.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Deterministic random source shared by the synthetic network and workload
/// generators. All experiments seed it explicitly so every figure is exactly
/// reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  double Normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Samples an index according to `weights` (need not be normalized).
  size_t Weighted(const std::vector<double>& weights);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace utcq::common

#endif  // UTCQ_COMMON_RNG_H_
