#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <utility>

namespace utcq::common {

namespace {

// Which pool (if any) the current thread is a worker of, and its index
// there. Lets Submit route a worker's own submissions to its local queue,
// and makes nested ParallelFor calls cheap to detect.
thread_local ThreadPool* tls_pool = nullptr;
thread_local size_t tls_worker_index = 0;

}  // namespace

unsigned DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

unsigned EffectiveThreads(size_t n, unsigned threads) {
  const unsigned hw = std::thread::hardware_concurrency();
  if (threads == 0) threads = hw == 0 ? 1 : hw;
  // Clamp explicit requests only when the hardware width is known: 0 means
  // "indeterminable", and flattening an explicit 8 to 1 there would
  // silently serialize a caller that knows its parallelism.
  if (hw != 0) threads = std::min(threads, hw);
  threads = static_cast<unsigned>(
      std::min<size_t>(threads, std::max<size_t>(n, 1)));
  return std::max(threads, 1u);
}

ThreadPool::ThreadPool(unsigned num_workers) {
  obs::MetricRegistry& reg = obs::MetricRegistry::Global();
  tasks_submitted_ = &reg.GetCounter("pool.tasks");
  tasks_stolen_ = &reg.GetCounter("pool.steals");
  queue_depth_ = &reg.GetGauge("pool.queue_depth");
  queues_.reserve(num_workers);
  for (unsigned i = 0; i < num_workers; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(num_workers);
  for (unsigned i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lk(sleep_mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  tasks_submitted_->Increment();
  if (workers_.empty()) {
    task();  // no one else to run it; degrade to inline execution
    return;
  }
  // Count before publishing: a worker that wakes on pending_ > 0 but loses
  // the race to the push simply rescans — transient, and the reverse order
  // would let pending_ dip below zero.
  pending_.fetch_add(1, std::memory_order_release);
  queue_depth_->Add(1);
  if (tls_pool == this) {
    WorkerQueue& q = *queues_[tls_worker_index];
    MutexLock lk(q.mu);
    q.tasks.push_front(std::move(task));
  } else {
    MutexLock lk(global_mu_);
    global_.push_back(std::move(task));
  }
  {
    // Empty critical section: pairs with the wait-loop check in WorkerLoop
    // so a worker between "saw no work" and "asleep" cannot miss the wake.
    MutexLock lk(sleep_mu_);
  }
  cv_.NotifyOne();
}

bool ThreadPool::FindTask(std::function<void()>* out, size_t self) {
  if (self != kNotAWorker) {
    WorkerQueue& q = *queues_[self];
    MutexLock lk(q.mu);
    if (!q.tasks.empty()) {
      *out = std::move(q.tasks.front());
      q.tasks.pop_front();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      queue_depth_->Sub(1);
      return true;
    }
  }
  {
    MutexLock lk(global_mu_);
    if (!global_.empty()) {
      *out = std::move(global_.front());
      global_.pop_front();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      queue_depth_->Sub(1);
      return true;
    }
  }
  for (size_t i = 0; i < queues_.size(); ++i) {
    if (i == self) continue;
    WorkerQueue& q = *queues_[i];
    MutexLock lk(q.mu);
    if (!q.tasks.empty()) {
      *out = std::move(q.tasks.back());  // steal the victim's oldest work
      q.tasks.pop_back();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      queue_depth_->Sub(1);
      tasks_stolen_->Increment();
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(size_t self) {
  tls_pool = this;
  tls_worker_index = self;
  std::function<void()> task;
  for (;;) {
    if (FindTask(&task, self)) {
      task();
      task = nullptr;  // release captures before sleeping
      continue;
    }
    MutexLock lk(sleep_mu_);
    if (stop_) return;  // nothing findable and shutting down: drained
    // Explicit wait loop (not a predicate lambda) so the stop_ reads sit
    // in a scope the thread-safety analysis can see sleep_mu_ held in.
    while (!stop_ && pending_.load(std::memory_order_acquire) == 0) {
      cv_.Wait(sleep_mu_);
    }
    if (stop_ && pending_.load(std::memory_order_acquire) == 0) return;
  }
}

struct ThreadPool::ForState {
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  // n and fn are deliberately unguarded: both are written once, before
  // the first helper task is published (Submit's queue push is the
  // release point), and never after — see DESIGN.md §13.
  size_t n = 0;
  const std::function<void(size_t)>* fn = nullptr;
  Mutex mu;
  CondVar cv;
};

void ThreadPool::DrainFor(ForState& s) {
  for (size_t i = s.next.fetch_add(1, std::memory_order_relaxed); i < s.n;
       i = s.next.fetch_add(1, std::memory_order_relaxed)) {
    // Claiming i < n proves the loop is unfinished, so the caller — who
    // owns `fn` — is still blocked in its completion wait: the pointer is
    // safe to chase. A helper task that starts after completion claims
    // i >= n and never touches it.
    (*s.fn)(i);
    if (s.done.fetch_add(1, std::memory_order_acq_rel) + 1 == s.n) {
      MutexLock lk(s.mu);
      s.cv.NotifyAll();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, unsigned threads,
                             const std::function<void(size_t)>& fn) {
  threads = EffectiveThreads(n, threads);
  if (n <= 1 || threads <= 1 || workers_.empty()) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto state = std::make_shared<ForState>();
  state->n = n;
  state->fn = &fn;
  // The caller is participant #1; enlist at most the whole pool besides.
  const unsigned helpers =
      std::min(threads - 1, static_cast<unsigned>(workers_.size()));
  for (unsigned h = 0; h < helpers; ++h) {
    Submit([state] { DrainFor(*state); });
  }
  // Self-draining is what makes nesting deadlock-free: even if every
  // worker is busy (perhaps blocked in an outer ParallelFor), the loop
  // completes on the calling thread alone and the helper tasks become
  // no-ops whenever they eventually run.
  DrainFor(*state);
  MutexLock lk(state->mu);
  while (state->done.load(std::memory_order_acquire) < state->n) {
    state->cv.Wait(state->mu);
  }
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(DefaultThreads() - 1);
  return pool;
}

void ParallelFor(size_t n, unsigned threads,
                 const std::function<void(size_t)>& fn) {
  ThreadPool::Shared().ParallelFor(n, threads, fn);
}

}  // namespace utcq::common
