#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace utcq::common {

unsigned DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ParallelFor(size_t n, unsigned threads,
                 const std::function<void(size_t)>& fn) {
  if (threads == 0) threads = DefaultThreads();
  if (n <= 1 || threads <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  const auto worker = [&] {
    for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
      fn(i);
    }
  };
  const unsigned helpers =
      static_cast<unsigned>(std::min<size_t>(threads, n)) - 1;
  std::vector<std::thread> pool;
  pool.reserve(helpers);
  for (unsigned t = 0; t < helpers; ++t) pool.emplace_back(worker);
  worker();  // the calling thread pulls its share
  for (std::thread& t : pool) t.join();
}

}  // namespace utcq::common
