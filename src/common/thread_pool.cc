#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace utcq::common {

unsigned DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

unsigned EffectiveThreads(size_t n, unsigned threads) {
  const unsigned hw = std::thread::hardware_concurrency();
  if (threads == 0) threads = hw == 0 ? 1 : hw;
  // Clamp explicit requests only when the hardware width is known: 0 means
  // "indeterminable", and flattening an explicit 8 to 1 there would
  // silently serialize a caller that knows its parallelism.
  if (hw != 0) threads = std::min(threads, hw);
  threads = static_cast<unsigned>(
      std::min<size_t>(threads, std::max<size_t>(n, 1)));
  return std::max(threads, 1u);
}

void ParallelFor(size_t n, unsigned threads,
                 const std::function<void(size_t)>& fn) {
  threads = EffectiveThreads(n, threads);
  if (n <= 1 || threads <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  const auto worker = [&] {
    for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
      fn(i);
    }
  };
  const unsigned helpers = threads - 1;
  std::vector<std::thread> pool;
  pool.reserve(helpers);
  for (unsigned t = 0; t < helpers; ++t) pool.emplace_back(worker);
  worker();  // the calling thread pulls its share
  for (std::thread& t : pool) t.join();
}

}  // namespace utcq::common
