#ifndef UTCQ_COMMON_VARINT_H_
#define UTCQ_COMMON_VARINT_H_

#include <cstdint>

#include "common/bitstream.h"

namespace utcq::common {

/// LEB128-style variable-length unsigned integers on a bit stream
/// (7 payload bits + 1 continuation bit per group). Used for framing
/// metadata (sequence lengths, counts) where values are usually small.
void PutVarint(BitWriter& w, uint64_t value);
uint64_t GetVarint(BitReader& r);

/// ZigZag mapping so small negative values stay small when varint-coded.
uint64_t ZigZagEncode(int64_t value);
int64_t ZigZagDecode(uint64_t value);

void PutSignedVarint(BitWriter& w, int64_t value);
int64_t GetSignedVarint(BitReader& r);

}  // namespace utcq::common

#endif  // UTCQ_COMMON_VARINT_H_
