#include "common/memory_tracker.h"

// MemoryTracker is header-only; this translation unit anchors the library.
