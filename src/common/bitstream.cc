#include "common/bitstream.h"

#include <cstring>

namespace utcq::common {

void BitWriter::PutBit(bool bit) {
  const size_t byte = size_bits_ / 8;
  if (byte == bytes_.size()) bytes_.push_back(0);
  if (bit) bytes_[byte] |= static_cast<uint8_t>(0x80u >> (size_bits_ % 8));
  ++size_bits_;
}

void BitWriter::PutBits(uint64_t value, int width) {
  for (int i = width - 1; i >= 0; --i) {
    PutBit((value >> i) & 1u);
  }
}

void BitWriter::PutRun(bool bit, size_t count) {
  for (size_t i = 0; i < count; ++i) PutBit(bit);
}

void BitWriter::Append(const BitWriter& other) {
  for (size_t i = 0; i < other.size_bits(); ++i) PutBit(other.BitAt(i));
}

bool BitWriter::BitAt(size_t pos) const {
  return (bytes_[pos / 8] >> (7 - pos % 8)) & 1u;
}

void BitWriter::Clear() {
  bytes_.clear();
  size_bits_ = 0;
}

int BitsFor(uint64_t n) {
  int bits = 0;
  while (n > 0) {
    ++bits;
    n >>= 1;
  }
  return bits;
}

}  // namespace utcq::common
