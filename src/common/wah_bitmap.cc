#include "common/wah_bitmap.h"

namespace utcq::common {

namespace {
constexpr uint32_t kGroupBits = 31;
constexpr uint32_t kFillFlag = 0x80000000u;
constexpr uint32_t kFillValueBit = 0x40000000u;
constexpr uint32_t kRunMask = 0x3FFFFFFFu;
constexpr uint32_t kAllOnesGroup = 0x7FFFFFFFu;
}  // namespace

WahBitmap WahBitmap::Compress(const std::vector<uint8_t>& bits) {
  WahBitmap out;
  out.original_bits_ = bits.size();
  const size_t groups = (bits.size() + kGroupBits - 1) / kGroupBits;
  uint32_t pending_fill_value = 0;
  uint32_t pending_fill_run = 0;

  auto flush_fill = [&] {
    if (pending_fill_run > 0) {
      out.words_.push_back(kFillFlag |
                           (pending_fill_value ? kFillValueBit : 0u) |
                           (pending_fill_run & kRunMask));
      pending_fill_run = 0;
    }
  };

  for (size_t g = 0; g < groups; ++g) {
    uint32_t group = 0;
    const size_t base = g * kGroupBits;
    const size_t count =
        base + kGroupBits <= bits.size() ? kGroupBits : bits.size() - base;
    for (size_t i = 0; i < count; ++i) {
      group = (group << 1) | (bits[base + i] ? 1u : 0u);
    }
    group <<= (kGroupBits - count);  // zero-pad the final partial group

    const bool full_group = count == kGroupBits;
    if (full_group && (group == 0 || group == kAllOnesGroup)) {
      const uint32_t value = group == 0 ? 0u : 1u;
      if (pending_fill_run > 0 && pending_fill_value != value) flush_fill();
      pending_fill_value = value;
      if (++pending_fill_run == kRunMask) flush_fill();
    } else {
      flush_fill();
      out.words_.push_back(group);
    }
  }
  flush_fill();
  return out;
}

std::vector<uint8_t> WahBitmap::Decompress() const {
  std::vector<uint8_t> bits;
  bits.reserve(original_bits_);
  for (const uint32_t word : words_) {
    if (word & kFillFlag) {
      const uint8_t value = (word & kFillValueBit) ? 1 : 0;
      const uint32_t run = word & kRunMask;
      for (uint32_t g = 0; g < run; ++g) {
        for (uint32_t i = 0; i < kGroupBits; ++i) bits.push_back(value);
      }
    } else {
      for (int i = static_cast<int>(kGroupBits) - 1; i >= 0; --i) {
        bits.push_back((word >> i) & 1u);
      }
    }
  }
  bits.resize(original_bits_);
  return bits;
}

}  // namespace utcq::common
