#include "common/rng.h"

namespace utcq::common {

size_t Rng::Weighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (const double w : weights) total += w;
  if (total <= 0.0) return 0;
  double x = Uniform(0.0, total);
  for (size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x <= 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace utcq::common
