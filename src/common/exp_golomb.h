#ifndef UTCQ_COMMON_EXP_GOLOMB_H_
#define UTCQ_COMMON_EXP_GOLOMB_H_

#include <cstdint>

#include "common/bitstream.h"

namespace utcq::strategies {
struct Kernels;
}  // namespace utcq::strategies

namespace utcq::common {

/// Standard order-k Exp-Golomb codes for unsigned integers [32].
///
/// Order 0 examples: 0 -> "1", 1 -> "010", 2 -> "011", 3 -> "00100".
void PutExpGolomb(BitWriter& w, uint64_t value, int k = 0);
uint64_t GetExpGolomb(BitReader& r, int k = 0);

/// GetExpGolomb against an explicit kernel table. Decode loops that pull
/// many codes hoist strategies::Active() once and use these overloads: the
/// per-symbol atomic load and out-of-line call are measurable at unary-code
/// symbol sizes.
uint64_t GetExpGolomb(BitReader& r, const strategies::Kernels& ks, int k);

/// Length in bits of the order-k Exp-Golomb code of `value`.
int ExpGolombLength(uint64_t value, int k = 0);

/// The paper's *improved* Exp-Golomb code for signed sample-interval
/// deviations (Section 4.4).
///
/// Deviations delta = (t_{i+1} - t_i) - Ts are grouped so that group j >= 0
/// covers |delta| in [2^j - 1, 2^{j+1} - 2]. The codeword is
///   j ones, one zero                 (unary group id)
///   [sign bit: 1 if delta < 0]       (omitted for group 0, which is {0})
///   [j-bit offset |delta| - (2^j-1)] (omitted for group 0)
/// reproducing the paper's worked example: 0 -> "0", +1 -> "1000",
/// -1 -> "1010".
void PutImprovedExpGolomb(BitWriter& w, int64_t delta);
int64_t GetImprovedExpGolomb(BitReader& r);
int64_t GetImprovedExpGolomb(BitReader& r, const strategies::Kernels& ks);

/// Length in bits of the improved code of `delta`.
int ImprovedExpGolombLength(int64_t delta);

}  // namespace utcq::common

#endif  // UTCQ_COMMON_EXP_GOLOMB_H_
