#ifndef UTCQ_COMMON_PDDP_H_
#define UTCQ_COMMON_PDDP_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/bitstream.h"

namespace utcq::common {

/// Distance-preserving lossy codec for values in [0, 1] with a configurable
/// error bound, after the PDDP scheme of TED [40].
///
/// A value v is coded as the shortest binary expansion b_1..b_I (weights
/// 2^-1..2^-I) whose reconstruction differs from v by at most eta. Codes are
/// self-framing on the bit stream: a fixed-width length field (BitsFor(I_max)
/// bits) precedes the I code bits, so a reader positioned at the start of a
/// code can decode it without external framing — the property the StIU
/// index's `d.pos` partial decompression relies on.
///
/// The code is distance preserving in the sense that lexicographic order of
/// equal-length codes equals numeric order of the reconstructed values.
class PddpCodec {
 public:
  /// `eta` must be in (0, 1). The maximum code length is
  /// I_max = ceil(log2(1/eta)), which guarantees every value in [0, 1] has a
  /// code with |decoded - v| <= eta.
  explicit PddpCodec(double eta);

  void Encode(BitWriter& w, double value) const;
  double Decode(BitReader& r) const;

  /// Length in bits of the code for `value` (length field included).
  int CodeLength(double value) const;

  /// Quantized reconstruction of `value` (what Decode would return after
  /// Encode). Exposed so callers can compare quantized values without
  /// round-tripping through a bit stream.
  double Quantize(double value) const;

  double eta() const { return eta_; }
  int max_code_bits() const { return max_bits_; }
  int length_field_bits() const { return length_bits_; }

 private:
  /// Finds the shortest (I, code) pair within the error bound.
  void ShortestCode(double value, int* length, uint64_t* code) const;

  double eta_;
  int max_bits_;
  int length_bits_;
};

/// Prefix tree over PDDP codes (the "PDDP-tree" of [40]).
///
/// The tree deduplicates the distinct quantized codes of a corpus and can
/// report the dictionary statistics the TED paper exploits (distinct-code
/// count, total trie nodes, per-code frequency). It also supports an
/// alternative dictionary encoding: values become fixed-width indexes into
/// the sorted distinct-code table. Benchmarks use this to ablate per-value
/// versus dictionary coding of relative distances.
class PddpTree {
 public:
  explicit PddpTree(PddpCodec codec) : codec_(codec) {}

  /// Inserts the quantized form of `value` into the tree.
  void Insert(double value);

  /// Number of distinct quantized codes inserted.
  size_t distinct_codes() const { return codes_.size(); }

  /// Total values inserted.
  size_t total_values() const { return total_; }

  /// Number of trie nodes the distinct codes occupy (root excluded).
  size_t trie_nodes() const;

  /// Bits per value when coding with fixed-width dictionary indexes
  /// (dictionary storage excluded).
  int index_bits() const;

  /// Dictionary index of `value`'s quantized code, or -1 if absent.
  int64_t IndexOf(double value) const;

  /// Reconstructed value for dictionary index `index`.
  double ValueAt(size_t index) const;

  const PddpCodec& codec() const { return codec_; }

 private:
  // Key: (length, code bits); map keeps keys sorted so indexes are
  // deterministic and order-preserving within a length class.
  using Key = std::pair<int, uint64_t>;

  PddpCodec codec_;
  std::map<Key, size_t> codes_;  // key -> frequency
  size_t total_ = 0;
};

}  // namespace utcq::common

#endif  // UTCQ_COMMON_PDDP_H_
