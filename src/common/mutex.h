#ifndef UTCQ_COMMON_MUTEX_H_
#define UTCQ_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace utcq::common {

/// The repo's one mutex type: std::mutex wrapped as an annotated Clang
/// capability (DESIGN.md §13). Every lock in src/ is a common::Mutex and
/// every guarded field names it in UTCQ_GUARDED_BY, which is what lets
/// -Wthread-safety prove the locking discipline at compile time;
/// scripts/repo_lint.py rejects raw std::mutex outside this header so no
/// lock can silently opt out of the analysis.
class UTCQ_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() UTCQ_ACQUIRE() { mu_.lock(); }
  void Unlock() UTCQ_RELEASE() { mu_.unlock(); }
  bool TryLock() UTCQ_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Scoped lock over a Mutex — the only way code outside this header takes
/// a lock. Deliberately minimal: no deferred/adopt modes, no early
/// unlock; a scope that wants to drop the lock ends the scope. That
/// keeps every acquire/release pair visible to the analysis (and to the
/// reader) as a brace pair.
class UTCQ_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) UTCQ_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() UTCQ_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with common::Mutex.
///
/// Wait() is annotated UTCQ_REQUIRES(mu), not release+reacquire: the lock
/// is held on entry and held again on return, and the window where wait()
/// internally drops it is invisible to callers — exactly the capability
/// state the analysis should track. Spurious wakeups happen; callers loop:
///
///   common::MutexLock lk(mu_);
///   while (!predicate_over_guarded_fields()) cv_.Wait(mu_);
///
/// (An explicit while-loop instead of a predicate lambda, so the guarded
/// reads stay inside a scope the analysis can see the lock in.)
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) UTCQ_REQUIRES(mu) {
    // Adopt the already-held lock for the wait, then release ownership
    // back to the caller's MutexLock without unlocking.
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace utcq::common

#endif  // UTCQ_COMMON_MUTEX_H_
