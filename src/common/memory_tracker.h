#ifndef UTCQ_COMMON_MEMORY_TRACKER_H_
#define UTCQ_COMMON_MEMORY_TRACKER_H_

#include <cstddef>
#include <cstdint>

namespace utcq::common {

/// Logical working-set accounting for the "maximum memory cost" metric of
/// the paper's Figures 6-8.
///
/// Process RSS cannot distinguish two compressors running in one benchmark
/// binary, so each compressor reports bytes of intermediate state it
/// materializes (score matrices and pivot representations for UTCQ, the
/// grouped A x B code matrices for TED). Add() / Release() bracket the
/// lifetime of such state; peak_bytes() is the reported metric.
class MemoryTracker {
 public:
  void Add(size_t bytes) {
    current_ += bytes;
    if (current_ > peak_) peak_ = current_;
  }

  void Release(size_t bytes) { current_ = bytes > current_ ? 0 : current_ - bytes; }

  void Reset() {
    current_ = 0;
    peak_ = 0;
  }

  size_t current_bytes() const { return current_; }
  size_t peak_bytes() const { return peak_; }

 private:
  size_t current_ = 0;
  size_t peak_ = 0;
};

/// RAII helper charging `bytes` to a tracker for the current scope.
class ScopedMemory {
 public:
  ScopedMemory(MemoryTracker* tracker, size_t bytes)
      : tracker_(tracker), bytes_(bytes) {
    if (tracker_ != nullptr) tracker_->Add(bytes_);
  }
  ~ScopedMemory() {
    if (tracker_ != nullptr) tracker_->Release(bytes_);
  }

  ScopedMemory(const ScopedMemory&) = delete;
  ScopedMemory& operator=(const ScopedMemory&) = delete;

 private:
  MemoryTracker* tracker_;
  size_t bytes_;
};

}  // namespace utcq::common

#endif  // UTCQ_COMMON_MEMORY_TRACKER_H_
