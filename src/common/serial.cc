#include "common/serial.h"

#include <cstring>

#include "common/varint.h"  // ZigZagEncode / ZigZagDecode

namespace utcq::common {

void ByteWriter::PutU16(uint16_t v) {
  PutU8(static_cast<uint8_t>(v));
  PutU8(static_cast<uint8_t>(v >> 8));
}

void ByteWriter::PutU32(uint32_t v) {
  PutU16(static_cast<uint16_t>(v));
  PutU16(static_cast<uint16_t>(v >> 16));
}

void ByteWriter::PutU64(uint64_t v) {
  PutU32(static_cast<uint32_t>(v));
  PutU32(static_cast<uint32_t>(v >> 32));
}

void ByteWriter::PutF32(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU32(bits);
}

void ByteWriter::PutF64(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void ByteWriter::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    PutU8(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  PutU8(static_cast<uint8_t>(v));
}

void ByteWriter::PutSignedVarint(int64_t v) { PutVarint(ZigZagEncode(v)); }

void ByteWriter::PutBytes(const void* data, size_t size) {
  const auto* p = static_cast<const uint8_t*>(data);
  bytes_.insert(bytes_.end(), p, p + size);
}

void ByteWriter::PutBlob(const void* data, size_t size) {
  PutVarint(size);
  PutBytes(data, size);
}

uint8_t ByteReader::GetU8() {
  if (pos_ >= size_) {
    ok_ = false;
    return 0;
  }
  return data_[pos_++];
}

uint16_t ByteReader::GetU16() {
  const uint16_t lo = GetU8();
  const uint16_t hi = GetU8();
  return static_cast<uint16_t>(lo | (hi << 8));
}

uint32_t ByteReader::GetU32() {
  const uint32_t lo = GetU16();
  const uint32_t hi = GetU16();
  return lo | (hi << 16);
}

uint64_t ByteReader::GetU64() {
  const uint64_t lo = GetU32();
  const uint64_t hi = GetU32();
  return lo | (hi << 32);
}

float ByteReader::GetF32() {
  const uint32_t bits = GetU32();
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

double ByteReader::GetF64() {
  const uint64_t bits = GetU64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

uint64_t ByteReader::GetVarint() {
  uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    const uint8_t byte = GetU8();
    value |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return value;
  }
  ok_ = false;  // > 10 continuation groups: malformed
  return value;
}

int64_t ByteReader::GetSignedVarint() { return ZigZagDecode(GetVarint()); }

bool ByteReader::GetBytes(void* out, size_t size) {
  // Zero-length reads succeed without touching `out`: empty vectors hand in
  // data() == nullptr, and memcpy/memset with a null pointer is UB even at
  // size 0 (an empty-corpus archive's stream sections hit exactly this).
  if (size == 0) return true;
  const uint8_t* p = BorrowBytes(size);
  if (p == nullptr) {
    std::memset(out, 0, size);
    return false;
  }
  std::memcpy(out, p, size);
  return true;
}

const uint8_t* ByteReader::BorrowBytes(size_t size) {
  if (size > remaining()) {
    ok_ = false;
    pos_ = size_;
    return nullptr;
  }
  const uint8_t* p = data_ + pos_;
  pos_ += size;
  return p;
}

void ByteReader::Skip(size_t size) {
  if (size > remaining()) {
    ok_ = false;
    pos_ = size_;
    return;
  }
  pos_ += size;
}

namespace {

struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t size, uint32_t seed) {
  static const Crc32Table table;
  uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table.entries[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace utcq::common
