#ifndef UTCQ_COMMON_THREAD_POOL_H_
#define UTCQ_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <functional>

namespace utcq::common {

/// Number of worker threads to use when the caller passes 0 ("pick for me"):
/// std::thread::hardware_concurrency(), or 1 when the runtime cannot tell.
unsigned DefaultThreads();

/// The worker count ParallelFor(n, threads, ...) actually runs with:
/// `threads` (or DefaultThreads() when 0) clamped to the hardware thread
/// count (when the runtime can tell it — explicit requests pass through
/// unclamped on an indeterminable box) and to n, never below 1. Benchmarks
/// must report this — not the requested count — or an 8-shard run on a
/// 1-core box records "8 threads" and its flat speedup curve reads as a
/// scaling regression.
unsigned EffectiveThreads(size_t n, unsigned threads);

/// Runs fn(i) for every i in [0, n) across EffectiveThreads(n, threads)
/// worker threads (the calling thread is one of them) — requesting more
/// threads than the hardware offers no longer oversubscribes. Work is
/// handed out through a shared atomic counter, so uneven task costs balance
/// automatically — important for shards of unequal size. Returns when every
/// index has completed.
///
/// Workers are spawned per call and joined before returning — there is no
/// persistent pool, so each call pays thread start-up. Right for coarse
/// tasks (shard compression, per-shard query fan-out); wrong for
/// micro-parallelism inside a hot loop.
///
/// With threads <= 1 or n <= 1 everything runs inline on the caller.
/// `fn` is invoked concurrently and must confine its writes to
/// per-index state; it must not throw.
void ParallelFor(size_t n, unsigned threads,
                 const std::function<void(size_t)>& fn);

}  // namespace utcq::common

#endif  // UTCQ_COMMON_THREAD_POOL_H_
