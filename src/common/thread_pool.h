#ifndef UTCQ_COMMON_THREAD_POOL_H_
#define UTCQ_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace utcq::common {

/// Number of worker threads to use when the caller passes 0 ("pick for me"):
/// std::thread::hardware_concurrency(), or 1 when the runtime cannot tell.
unsigned DefaultThreads();

/// The worker count ParallelFor(n, threads, ...) actually runs with:
/// `threads` (or DefaultThreads() when 0) clamped to the hardware thread
/// count (when the runtime can tell it — explicit requests pass through
/// unclamped on an indeterminable box) and to n, never below 1. Benchmarks
/// must report this — not the requested count — or an 8-shard run on a
/// 1-core box records "8 threads" and its flat speedup curve reads as a
/// scaling regression.
unsigned EffectiveThreads(size_t n, unsigned threads);

/// Persistent work-stealing thread pool.
///
/// Workers are spawned once, at construction, and live until destruction —
/// ParallelFor fan-outs (shard compression, sealed-corpus builds, query
/// batches) stopped paying per-call thread start-up when they moved onto
/// this. Each worker owns a deque: it pushes and pops its own front (LIFO,
/// for cache locality and so nested fan-outs drain depth-first) and steals
/// from other workers' backs; tasks submitted from outside the pool land on
/// a shared injection queue that every worker also drains.
///
/// Lifecycle / shutdown ordering (DESIGN.md §12): the destructor latches
/// stop, wakes every worker, and joins. A worker only exits once it finds
/// no runnable task with stop latched, so everything submitted *before*
/// destruction began still runs; submitting concurrently with destruction
/// is a caller bug. The process-wide Shared() pool is a function-local
/// static, so it is torn down after main() returns, behind every static
/// consumer that could still fan out.
class ThreadPool {
 public:
  /// Spawns `num_workers` workers. Zero is valid and degrades gracefully:
  /// Submit runs the task inline and ParallelFor runs entirely on the
  /// caller — the shape single-core boxes and UTCQ_* test overrides get.
  explicit ThreadPool(unsigned num_workers);

  /// Drains every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for some worker. Called from inside a worker of this
  /// pool, the task goes to that worker's own queue (front); otherwise to
  /// the shared injection queue. `task` must not throw.
  void Submit(std::function<void()> task);

  /// Runs fn(i) for every i in [0, n) across EffectiveThreads(n, threads)
  /// participants — the calling thread always one of them, joined by up to
  /// EffectiveThreads - 1 pool workers. Work is handed out through a shared
  /// atomic counter, so uneven task costs balance automatically — important
  /// for shards of unequal size. Returns when every index has completed.
  ///
  /// Safe to nest (a worker running a ParallelFor task may issue its own):
  /// the inner caller participates in its own loop, so completion never
  /// waits on a worker that is not already committed to the loop. With
  /// threads <= 1 or n <= 1 everything runs inline on the caller.
  /// `fn` is invoked concurrently and must confine its writes to
  /// per-index state; it must not throw.
  void ParallelFor(size_t n, unsigned threads,
                   const std::function<void(size_t)>& fn);

  unsigned num_workers() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// The process-wide pool: DefaultThreads() - 1 workers, so a saturating
  /// ParallelFor (caller + workers) matches the hardware width. Built on
  /// first use, destroyed after main() exits.
  static ThreadPool& Shared();

 private:
  struct WorkerQueue {
    Mutex mu;
    std::deque<std::function<void()>> tasks UTCQ_GUARDED_BY(mu);
  };
  struct ForState;

  static constexpr size_t kNotAWorker = static_cast<size_t>(-1);

  /// Worker `self`'s scavenging order: own front, injection queue, steal
  /// another's back. External threads pass kNotAWorker.
  bool FindTask(std::function<void()>* out, size_t self);
  void WorkerLoop(size_t self);
  static void DrainFor(ForState& s);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  Mutex global_mu_;
  std::deque<std::function<void()>> global_ UTCQ_GUARDED_BY(global_mu_);

  // Sleep bookkeeping: pending_ counts queued-but-unclaimed tasks; workers
  // sleep on cv_ when a scavenge comes up empty.
  Mutex sleep_mu_;
  CondVar cv_;
  std::atomic<size_t> pending_{0};
  bool stop_ UTCQ_GUARDED_BY(sleep_mu_) = false;

  // Pool instruments (DESIGN.md §15), always in MetricRegistry::Global():
  // the pool is a process-wide resource, so its series aggregate across
  // instances. Resolving Global() in the constructor also sequences the
  // registry's construction before the Shared() pool's, hence its
  // destruction after — instrument writes during pool teardown stay valid.
  obs::Counter* tasks_submitted_ = nullptr;
  obs::Counter* tasks_stolen_ = nullptr;
  obs::Gauge* queue_depth_ = nullptr;

  std::vector<std::thread> workers_;
};

/// Runs fn over [0, n) on the shared pool; see ThreadPool::ParallelFor.
/// This is the entry point ShardedCompressor, ShardedCorpus and
/// QueryEngine::ExecuteBatch all fan out through, which is what makes one
/// process-wide set of workers serve every layer.
void ParallelFor(size_t n, unsigned threads,
                 const std::function<void(size_t)>& fn);

}  // namespace utcq::common

#endif  // UTCQ_COMMON_THREAD_POOL_H_
