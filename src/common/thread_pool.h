#ifndef UTCQ_COMMON_THREAD_POOL_H_
#define UTCQ_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <functional>

namespace utcq::common {

/// Number of worker threads to use when the caller passes 0 ("pick for me"):
/// std::thread::hardware_concurrency(), or 1 when the runtime cannot tell.
unsigned DefaultThreads();

/// Runs fn(i) for every i in [0, n) across up to `threads` worker threads
/// (the calling thread is one of them). Work is handed out through a shared
/// atomic counter, so uneven task costs balance automatically — important
/// for shards of unequal size. Returns when every index has completed.
///
/// Workers are spawned per call and joined before returning — there is no
/// persistent pool, so each call pays thread start-up. Right for coarse
/// tasks (shard compression, per-shard query fan-out); wrong for
/// micro-parallelism inside a hot loop.
///
/// With threads <= 1 or n <= 1 everything runs inline on the caller.
/// `fn` is invoked concurrently and must confine its writes to
/// per-index state; it must not throw.
void ParallelFor(size_t n, unsigned threads,
                 const std::function<void(size_t)>& fn);

}  // namespace utcq::common

#endif  // UTCQ_COMMON_THREAD_POOL_H_
