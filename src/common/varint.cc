#include "common/varint.h"

#include "strategies/strategies.h"

namespace utcq::common {

void PutVarint(BitWriter& w, uint64_t value) {
  while (true) {
    const uint64_t group = value & 0x7Fu;
    value >>= 7;
    w.PutBit(value != 0);  // continuation bit first, MSB-style framing
    w.PutBits(group, 7);
    if (value == 0) break;
  }
}

uint64_t GetVarint(BitReader& r) {
  // Varints frame every stream (lengths, counts), so their reads go through
  // the active kernel table like every other decode read: a continuation
  // bit plus a 7-bit group per byte is 8 bit-at-a-time reads under the
  // kBitloop tier, exactly what the pre-dispatch decoder paid.
  const strategies::Kernels& ks = strategies::Active();
  uint64_t value = 0;
  int shift = 0;
  while (true) {
    const uint64_t byte = ks.get_bits(r, 8);
    value |= (byte & 0x7Fu) << shift;
    if ((byte & 0x80u) == 0 || shift >= 63) break;
    shift += 7;
  }
  return value;
}

uint64_t ZigZagEncode(int64_t value) {
  return (static_cast<uint64_t>(value) << 1) ^
         static_cast<uint64_t>(value >> 63);
}

int64_t ZigZagDecode(uint64_t value) {
  return static_cast<int64_t>(value >> 1) ^ -static_cast<int64_t>(value & 1);
}

void PutSignedVarint(BitWriter& w, int64_t value) {
  PutVarint(w, ZigZagEncode(value));
}

int64_t GetSignedVarint(BitReader& r) { return ZigZagDecode(GetVarint(r)); }

}  // namespace utcq::common
