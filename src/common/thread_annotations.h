#ifndef UTCQ_COMMON_THREAD_ANNOTATIONS_H_
#define UTCQ_COMMON_THREAD_ANNOTATIONS_H_

// Clang thread-safety-analysis attributes (DESIGN.md §13), absl-style.
//
// These make the repo's locking invariants machine-checked at compile
// time: a field declared UTCQ_GUARDED_BY(mu) read without `mu` held, or a
// UTCQ_REQUIRES(mu) method called unlocked, is a -Wthread-safety
// diagnostic — and Clang builds promote that group to an error
// (CMakeLists.txt), so a missed guard fails the build instead of waiting
// for a lucky TSan interleaving on a 1-core box. Off-Clang every macro
// expands to nothing; the annotations carry zero runtime cost everywhere.
//
// Only common::Mutex / common::MutexLock / common::CondVar (common/mutex.h)
// may define capabilities; everything else consumes these macros on fields
// and methods. scripts/repo_lint.py enforces that no raw std::mutex
// appears outside common/, which is what keeps the analysis load-bearing:
// an unannotated mutex is invisible to it.
#if defined(__clang__)
#define UTCQ_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define UTCQ_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op off-Clang
#endif

/// Marks a type as a lockable capability ("mutex" in diagnostics).
#define UTCQ_CAPABILITY(x) UTCQ_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define UTCQ_SCOPED_CAPABILITY UTCQ_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Field may only be accessed with capability `x` held.
#define UTCQ_GUARDED_BY(x) UTCQ_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer field whose *pointee* may only be accessed with `x` held.
#define UTCQ_PT_GUARDED_BY(x) UTCQ_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Declared lock-acquisition order (checked under -Wthread-safety-beta).
#define UTCQ_ACQUIRED_BEFORE(...) \
  UTCQ_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define UTCQ_ACQUIRED_AFTER(...) \
  UTCQ_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

/// Function requires the capability held on entry (and does not release).
#define UTCQ_REQUIRES(...) \
  UTCQ_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define UTCQ_REQUIRES_SHARED(...) \
  UTCQ_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// Function acquires / releases the capability.
#define UTCQ_ACQUIRE(...) \
  UTCQ_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define UTCQ_RELEASE(...) \
  UTCQ_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// Function acquires only when it returns `b` (true for std try_lock).
#define UTCQ_TRY_ACQUIRE(b, ...) \
  UTCQ_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(b, __VA_ARGS__))

/// Function must NOT be called with the capability held (deadlock guard).
#define UTCQ_EXCLUDES(...) \
  UTCQ_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Asserts (at analysis level) that the capability is held.
#define UTCQ_ASSERT_CAPABILITY(x) \
  UTCQ_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

/// Function returns a reference to the capability guarding its result.
#define UTCQ_RETURN_CAPABILITY(x) \
  UTCQ_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch — every use needs a comment explaining why the analysis
/// cannot see the invariant (none in src/ today; keep it that way).
#define UTCQ_NO_THREAD_SAFETY_ANALYSIS \
  UTCQ_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // UTCQ_COMMON_THREAD_ANNOTATIONS_H_
