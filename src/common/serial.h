#ifndef UTCQ_COMMON_SERIAL_H_
#define UTCQ_COMMON_SERIAL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace utcq::common {

/// Byte-oriented serialization for the on-disk archive container
/// (DESIGN.md §6). Unlike BitWriter/BitReader — which carry the *compressed
/// payloads* at bit granularity — these carry the container framing:
/// little-endian fixed-width fields, LEB128 varints, and length-prefixed
/// blobs. Every section of the archive is a (tag, length, payload) record
/// written through a ByteWriter and re-read through a bounds-checked
/// ByteReader.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { bytes_.push_back(v); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  /// IEEE-754 bit pattern, little-endian.
  void PutF32(float v);
  void PutF64(double v);
  /// LEB128: 7 payload bits per byte, high bit marks continuation.
  void PutVarint(uint64_t v);
  void PutSignedVarint(int64_t v);
  void PutBytes(const void* data, size_t size);
  /// Varint length followed by the raw bytes.
  void PutBlob(const void* data, size_t size);

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  size_t size() const { return bytes_.size(); }
  std::vector<uint8_t> Release() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

/// Bounds-checked reader over a borrowed byte buffer. Reading past the end
/// returns zeros and latches ok() to false — callers validate once at the
/// end of a section rather than after every field, mirroring how
/// BitReader::overflow() is used on the bit streams.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<uint8_t>& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  uint8_t GetU8();
  uint16_t GetU16();
  uint32_t GetU32();
  uint64_t GetU64();
  float GetF32();
  double GetF64();
  uint64_t GetVarint();
  int64_t GetSignedVarint();
  bool GetBytes(void* out, size_t size);
  /// Borrows `size` bytes from the buffer (no copy); nullptr on overrun.
  const uint8_t* BorrowBytes(size_t size);
  void Skip(size_t size);

  size_t position() const { return pos_; }
  size_t remaining() const { return pos_ < size_ ? size_ - pos_ : 0; }
  /// False once any read overran the buffer or a varint was malformed.
  bool ok() const { return ok_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320). The archive footer
/// stores the checksum of every preceding byte so truncation and bit rot are
/// rejected before any section is parsed.
uint32_t Crc32(const uint8_t* data, size_t size, uint32_t seed = 0);

}  // namespace utcq::common

#endif  // UTCQ_COMMON_SERIAL_H_
