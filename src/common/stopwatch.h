#ifndef UTCQ_COMMON_STOPWATCH_H_
#define UTCQ_COMMON_STOPWATCH_H_

#include <chrono>

namespace utcq::common {

/// Monotonic wall-clock stopwatch for the compression/query time metrics.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace utcq::common

#endif  // UTCQ_COMMON_STOPWATCH_H_
