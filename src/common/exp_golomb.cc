#include "common/exp_golomb.h"

#include <cstdlib>

#include "strategies/strategies.h"

namespace utcq::common {

void PutExpGolomb(BitWriter& w, uint64_t value, int k) {
  const uint64_t shifted = (value >> k) + 1;
  const int n = BitsFor(shifted) - 1;  // floor(log2(shifted))
  w.PutRun(false, static_cast<size_t>(n));
  w.PutBits(shifted, n + 1);
  if (k > 0) w.PutBits(value & ((uint64_t{1} << k) - 1), k);
}

uint64_t GetExpGolomb(BitReader& r, int k) {
  return GetExpGolomb(r, strategies::Active(), k);
}

uint64_t GetExpGolomb(BitReader& r, const strategies::Kernels& ks, int k) {
  // No valid codeword has a unary prefix longer than 63 zeros (shifted
  // would not fit in 64 bits); the scan rejects longer runs — and runs
  // truncated by the end of the stream — by latching overflow.
  const int n = ks.scan_zero_run(r, 63);
  if (n < 0) return 0;
  uint64_t shifted = uint64_t{1} << n;
  shifted |= ks.get_bits(r, n);
  uint64_t value = (shifted - 1) << k;
  if (k > 0) value |= ks.get_bits(r, k);
  return value;
}

int ExpGolombLength(uint64_t value, int k) {
  const uint64_t shifted = (value >> k) + 1;
  const int n = BitsFor(shifted) - 1;
  return 2 * n + 1 + k;
}

namespace {

// Group j covers |delta| in [2^j - 1, 2^{j+1} - 2]; group of 0 is 0.
int GroupOf(uint64_t magnitude) {
  int j = 0;
  while (magnitude > (uint64_t{2} << j) - 2) ++j;
  return j;
}

}  // namespace

void PutImprovedExpGolomb(BitWriter& w, int64_t delta) {
  const uint64_t magnitude =
      delta < 0 ? static_cast<uint64_t>(-delta) : static_cast<uint64_t>(delta);
  const int j = GroupOf(magnitude);
  w.PutRun(true, static_cast<size_t>(j));
  w.PutBit(false);
  if (j == 0) return;  // group 0 holds only delta == 0
  w.PutBit(delta < 0);
  w.PutBits(magnitude - ((uint64_t{1} << j) - 1), j);
}

int64_t GetImprovedExpGolomb(BitReader& r) {
  return GetImprovedExpGolomb(r, strategies::Active());
}

int64_t GetImprovedExpGolomb(BitReader& r, const strategies::Kernels& ks) {
  // Groups past 62 decode to magnitudes >= 2^63 - 1 that do not fit a
  // positive int64_t; the scan rejects such runs — and runs a truncated
  // stream ends with a phantom 0 bit — by latching overflow.
  const int j = ks.scan_one_run(r, 62);
  if (j <= 0) return 0;  // group 0 holds only delta == 0
  const bool negative = ks.get_bits(r, 1) != 0;
  const uint64_t offset = ks.get_bits(r, j);
  const int64_t magnitude =
      static_cast<int64_t>(offset + ((uint64_t{1} << j) - 1));
  return negative ? -magnitude : magnitude;
}

int ImprovedExpGolombLength(int64_t delta) {
  const uint64_t magnitude =
      delta < 0 ? static_cast<uint64_t>(-delta) : static_cast<uint64_t>(delta);
  const int j = GroupOf(magnitude);
  return j == 0 ? 1 : 2 * j + 2;
}

}  // namespace utcq::common
