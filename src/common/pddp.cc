#include "common/pddp.h"

#include <algorithm>
#include <cmath>

#include "strategies/strategies.h"

namespace utcq::common {

PddpCodec::PddpCodec(double eta) : eta_(eta) {
  max_bits_ = 0;
  // Smallest I with 2^-I <= eta; the clamped rounding below then always
  // meets the bound at I_max, including at v == 1.
  while (std::ldexp(1.0, -max_bits_) > eta && max_bits_ < 62) ++max_bits_;
  length_bits_ = BitsFor(static_cast<uint64_t>(max_bits_));
}

void PddpCodec::ShortestCode(double value, int* length, uint64_t* code) const {
  const double v = std::clamp(value, 0.0, 1.0);
  for (int i = 0; i <= max_bits_; ++i) {
    const double scale = std::ldexp(1.0, i);  // 2^i
    uint64_t c = static_cast<uint64_t>(std::llround(v * scale));
    const uint64_t limit = (uint64_t{1} << i) - 1;
    c = std::min(c, limit);
    const double decoded = static_cast<double>(c) / scale;
    if (std::abs(decoded - v) <= eta_) {
      *length = i;
      *code = c;
      return;
    }
  }
  // Unreachable by construction of max_bits_, but keep a safe fallback.
  *length = max_bits_;
  const double scale = std::ldexp(1.0, max_bits_);
  *code = std::min(static_cast<uint64_t>(std::llround(v * scale)),
                   (uint64_t{1} << max_bits_) - 1);
}

void PddpCodec::Encode(BitWriter& w, double value) const {
  int length = 0;
  uint64_t code = 0;
  ShortestCode(value, &length, &code);
  w.PutBits(static_cast<uint64_t>(length), length_bits_);
  w.PutBits(code, length);
}

double PddpCodec::Decode(BitReader& r) const {
  // The kernel reads the BitsFor(max_bits_)-wide length field and the
  // length code bits in one windowed extraction. Length fields above
  // max_bits_ — which the encoder never emits, but the field is wide
  // enough to hold — are rejected via MarkOverflow after consuming only
  // the length field.
  return strategies::Active().pddp_decode(r, length_bits_, max_bits_);
}

int PddpCodec::CodeLength(double value) const {
  int length = 0;
  uint64_t code = 0;
  ShortestCode(value, &length, &code);
  return length_bits_ + length;
}

double PddpCodec::Quantize(double value) const {
  int length = 0;
  uint64_t code = 0;
  ShortestCode(value, &length, &code);
  if (length == 0) return 0.0;
  return static_cast<double>(code) / std::ldexp(1.0, length);
}

void PddpTree::Insert(double value) {
  int length = 0;
  uint64_t code = 0;
  // Reuse the codec's shortest-code search via CodeLength/Quantize
  // equivalents; recompute directly to get both fields.
  const double q = codec_.Quantize(value);
  length = codec_.CodeLength(value) - codec_.length_field_bits();
  code = length == 0
             ? 0
             : static_cast<uint64_t>(std::llround(q * std::ldexp(1.0, length)));
  ++codes_[{length, code}];
  ++total_;
}

size_t PddpTree::trie_nodes() const {
  // Each code contributes its prefixes; count distinct (depth, prefix) pairs.
  std::map<Key, bool> seen;
  for (const auto& [key, freq] : codes_) {
    (void)freq;
    for (int d = 1; d <= key.first; ++d) {
      seen[{d, key.second >> (key.first - d)}] = true;
    }
  }
  return seen.size();
}

int PddpTree::index_bits() const {
  if (codes_.size() <= 1) return 1;
  return BitsFor(codes_.size() - 1);
}

int64_t PddpTree::IndexOf(double value) const {
  const double q = codec_.Quantize(value);
  const int length = codec_.CodeLength(value) - codec_.length_field_bits();
  const uint64_t code =
      length == 0
          ? 0
          : static_cast<uint64_t>(std::llround(q * std::ldexp(1.0, length)));
  const auto it = codes_.find({length, code});
  if (it == codes_.end()) return -1;
  return static_cast<int64_t>(std::distance(codes_.begin(), it));
}

double PddpTree::ValueAt(size_t index) const {
  auto it = codes_.begin();
  std::advance(it, static_cast<long>(index));
  const auto [length, code] = it->first;
  if (length == 0) return 0.0;
  return static_cast<double>(code) / std::ldexp(1.0, length);
}

}  // namespace utcq::common
