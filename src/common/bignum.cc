#include "common/bignum.h"

namespace utcq::common {

BigNum::BigNum(uint64_t v) {
  while (v > 0) {
    limbs_.push_back(static_cast<uint32_t>(v & 0xFFFFFFFFu));
    v >>= 32;
  }
}

void BigNum::Trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

void BigNum::MulAdd(uint32_t m, uint32_t a) {
  uint64_t carry = a;
  for (auto& limb : limbs_) {
    const uint64_t v = static_cast<uint64_t>(limb) * m + carry;
    limb = static_cast<uint32_t>(v & 0xFFFFFFFFu);
    carry = v >> 32;
  }
  while (carry > 0) {
    limbs_.push_back(static_cast<uint32_t>(carry & 0xFFFFFFFFu));
    carry >>= 32;
  }
  Trim();
}

uint32_t BigNum::DivMod(uint32_t d) {
  uint64_t rem = 0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    const uint64_t cur = (rem << 32) | limbs_[i];
    limbs_[i] = static_cast<uint32_t>(cur / d);
    rem = cur % d;
  }
  Trim();
  return static_cast<uint32_t>(rem);
}

int BigNum::BitLength() const {
  if (limbs_.empty()) return 0;
  const uint32_t top = limbs_.back();
  return static_cast<int>((limbs_.size() - 1) * 32) + BitsFor(top);
}

void BigNum::WriteBits(BitWriter& w, int width) const {
  for (int i = width - 1; i >= 0; --i) {
    const size_t limb = static_cast<size_t>(i) / 32;
    const bool bit = limb < limbs_.size() && ((limbs_[limb] >> (i % 32)) & 1u);
    w.PutBit(bit);
  }
}

BigNum BigNum::ReadBits(BitReader& r, int width) {
  BigNum out;
  out.limbs_.assign(static_cast<size_t>(width + 31) / 32, 0);
  for (int i = width - 1; i >= 0; --i) {
    if (r.GetBit()) {
      out.limbs_[static_cast<size_t>(i) / 32] |= (1u << (i % 32));
    }
  }
  out.Trim();
  return out;
}

}  // namespace utcq::common
