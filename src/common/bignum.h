#ifndef UTCQ_COMMON_BIGNUM_H_
#define UTCQ_COMMON_BIGNUM_H_

#include <cstdint>
#include <vector>

#include "common/bitstream.h"

namespace utcq::common {

/// Minimal unsigned multiprecision integer for TED's multiple-bases (mixed
/// radix) matrix compression [40]: a row of outgoing-edge digits d_0..d_{B-1}
/// with per-column bases b_c packs into the single number
/// sum_c d_c * prod_{c'<c} b_{c'}, which needs ceil(log2(prod b_c)) bits —
/// strictly fewer than sum_c ceil(log2 b_c) whenever bases are not powers
/// of two. Little-endian 32-bit limbs.
class BigNum {
 public:
  BigNum() = default;
  explicit BigNum(uint64_t v);

  /// *this = *this * m + a  (m, a < 2^32).
  void MulAdd(uint32_t m, uint32_t a);

  /// Returns *this mod d and sets *this = *this / d  (d < 2^32, d > 0).
  uint32_t DivMod(uint32_t d);

  bool IsZero() const { return limbs_.empty(); }

  /// Number of significant bits (0 for zero).
  int BitLength() const;

  /// Writes exactly `width` bits, most significant first.
  void WriteBits(BitWriter& w, int width) const;

  /// Reads `width` bits into a BigNum.
  static BigNum ReadBits(BitReader& r, int width);

  const std::vector<uint32_t>& limbs() const { return limbs_; }

 private:
  void Trim();
  std::vector<uint32_t> limbs_;  // little-endian, no trailing zero limbs
};

}  // namespace utcq::common

#endif  // UTCQ_COMMON_BIGNUM_H_
