#ifndef UTCQ_COMMON_BITSTREAM_H_
#define UTCQ_COMMON_BITSTREAM_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace utcq::common {

/// A borrowed, immutable view of a bit stream: a pointer into bytes owned by
/// someone else (a live BitWriter or a loaded archive buffer) plus a bit
/// count. This is the currency of the read path — decoders and query
/// processors hold BitSpans and never know whether the bits came from an
/// in-memory compression run or from disk.
struct BitSpan {
  const uint8_t* data = nullptr;
  size_t size_bits = 0;

  size_t size_bytes() const { return (size_bits + 7) / 8; }
  bool empty() const { return size_bits == 0; }
};

/// Append-only MSB-first bit buffer.
///
/// All compressed artifacts in this project (TED and UTCQ alike) are built on
/// this writer: fixed-width fields, Exp-Golomb codes, PDDP codes and raw
/// bit-strings are appended in sequence and later consumed by a BitReader
/// positioned at an arbitrary bit offset (partial decompression relies on
/// that random positioning).
class BitWriter {
 public:
  BitWriter() = default;

  /// Appends the single bit `bit` (0 or 1).
  void PutBit(bool bit);

  /// Appends the lowest `width` bits of `value`, most significant bit first.
  /// `width` must be <= 64. A width of 0 appends nothing.
  void PutBits(uint64_t value, int width);

  /// Appends `count` copies of `bit`.
  void PutRun(bool bit, size_t count);

  /// Appends the contents of another writer.
  void Append(const BitWriter& other);

  /// Number of bits written so far.
  size_t size_bits() const { return size_bits_; }

  /// Number of bytes needed to hold the written bits.
  size_t size_bytes() const { return (size_bits_ + 7) / 8; }

  /// Read access to bit `pos` (0-based from the start of the stream).
  bool BitAt(size_t pos) const;

  /// Backing bytes; the final partial byte (if any) is zero-padded.
  const std::vector<uint8_t>& bytes() const { return bytes_; }

  /// Borrowed view of the written bits; invalidated by further writes.
  BitSpan span() const { return {bytes_.data(), size_bits_}; }

  void Clear();

 private:
  std::vector<uint8_t> bytes_;
  size_t size_bits_ = 0;
};

/// MSB-first reader over a byte buffer, seekable to any bit position.
class BitReader {
 public:
  /// The reader does not own the buffer; it must outlive the reader.
  BitReader(const uint8_t* data, size_t size_bits)
      : data_(data), size_bits_(size_bits) {}

  explicit BitReader(const BitWriter& w)
      : BitReader(w.bytes().data(), w.size_bits()) {}

  explicit BitReader(const BitSpan& span)
      : BitReader(span.data, span.size_bits) {}

  // The four read primitives are defined in-class and force-inlined: they
  // are the innermost ops of every decode kernel, and a call per bit/field
  // would dominate at these sizes. always_inline also keeps each strategy
  // TU's copy compiled under that TU's own ISA flags with no out-of-line
  // body a linker could merge across differently-flagged TUs (the ODR
  // hazard documented in strategies/word_kernels.h).
#define UTCQ_BITSTREAM_INLINE inline __attribute__((always_inline))

  /// Reads one bit. Reading past the end returns 0 and sets overflow().
  UTCQ_BITSTREAM_INLINE bool GetBit() {
    if (pos_ >= size_bits_) {
      overflow_ = true;
      return false;
    }
    const bool bit = (data_[pos_ / 8] >> (7 - pos_ % 8)) & 1u;
    ++pos_;
    return bit;
  }

  /// Reads `width` (<= 64) bits MSB-first into the low bits of the result.
  /// Word-at-a-time: the field's bytes are loaded in one shot and
  /// shifted/masked into place (a read that crosses the end of the stream
  /// falls back to the bit loop so past-the-end bits stay phantom zeros and
  /// overflow() latches, exactly as repeated GetBit() would behave).
  UTCQ_BITSTREAM_INLINE uint64_t GetBits(int width) {
    if (width <= 0) return 0;
    const size_t uw = static_cast<size_t>(width);
    if (pos_ + uw > size_bits_) {
      // Crosses the end: keep the bit-loop semantics (in-range bits
      // followed by phantom zeros, overflow latched, cursor saturated).
      uint64_t v = 0;
      for (int i = 0; i < width; ++i) {
        v = (v << 1) | static_cast<uint64_t>(GetBit());
      }
      return v;
    }
    const size_t first = pos_ >> 3;
    const int lead = static_cast<int>(pos_ & 7);
    const int need = lead + width;  // bits spanned from the first byte; <= 71
    pos_ += uw;
    const uint64_t mask =
        width == 64 ? ~uint64_t{0} : (uint64_t{1} << width) - 1;
    const size_t total_bytes = (size_bits_ + 7) >> 3;
    if (first + 8 <= total_bytes) {
      uint64_t word;
      std::memcpy(&word, data_ + first, 8);
      word = __builtin_bswap64(word);
      if (need <= 64) return (word >> (64 - need)) & mask;
      // The field runs into a ninth byte (lead > 0 and width near 64); that
      // byte exists because pos_ + width <= size_bits_.
      const int rem = need - 64;  // 1..7
      return ((word << rem) | (data_[first + 8] >> (8 - rem))) & mask;
    }
    // Tail of the buffer: assemble exactly the spanned bytes.
    uint64_t word = 0;
    int loaded = 0;
    const uint8_t* p = data_ + first;
    while (loaded < need) {
      word = (word << 8) | *p++;
      loaded += 8;
    }
    return (word >> (loaded - need)) & mask;
  }

  /// The next 64 bits MSB-first without advancing. Bits past the end of the
  /// stream read as zero *even when the backing buffer's final partial byte
  /// carries garbage padding* (archives are untrusted), and overflow() is
  /// not touched. Strategy kernels build unary-run scans on this.
  UTCQ_BITSTREAM_INLINE uint64_t PeekBits64() const {
    if (pos_ >= size_bits_) return 0;
    const size_t avail = size_bits_ - pos_;
    const size_t total_bytes = (size_bits_ + 7) >> 3;
    const size_t first = pos_ >> 3;
    const int lead = static_cast<int>(pos_ & 7);
    uint64_t word;
    if (first + 8 <= total_bytes) {
      std::memcpy(&word, data_ + first, 8);
      word = __builtin_bswap64(word);
      word <<= lead;
      if (lead != 0 && first + 8 < total_bytes) {
        word |= static_cast<uint64_t>(data_[first + 8]) >> (8 - lead);
      }
    } else {
      word = 0;
      int loaded = 0;
      for (size_t b = first; b < total_bytes; ++b) {
        word = (word << 8) | data_[b];
        loaded += 8;
      }
      word <<= 64 - loaded;  // left-justify (loaded is in [8, 56] here)
      word <<= lead;         // drop the already-consumed bits
    }
    if (avail < 64) {
      // Bits past size_bits() read as zero regardless of what the buffer's
      // padding holds — an untrusted archive's final byte is not trusted
      // to be canonically zero-padded.
      word &= ~uint64_t{0} << (64 - avail);
    }
    return word;
  }

  /// Advances the cursor by `count` bits. Advancing past the end saturates
  /// at size_bits() and latches overflow(), mirroring GetBit's behaviour.
  UTCQ_BITSTREAM_INLINE void Advance(size_t count) {
    const size_t rem = pos_ < size_bits_ ? size_bits_ - pos_ : 0;
    if (count > rem) {
      pos_ = size_bits_;
      overflow_ = true;
    } else {
      pos_ += count;
    }
  }

#undef UTCQ_BITSTREAM_INLINE

  /// Repositions the cursor to absolute bit `pos`.
  void Seek(size_t pos) { pos_ = pos; }

  /// Backing bytes (for strategy kernels that assemble words themselves;
  /// (size_bits() + 7) / 8 bytes are readable).
  const uint8_t* data() const { return data_; }

  size_t position() const { return pos_; }
  size_t size_bits() const { return size_bits_; }
  size_t remaining() const { return pos_ < size_bits_ ? size_bits_ - pos_ : 0; }
  bool overflow() const { return overflow_; }

  /// Latches overflow() true. Codecs layered on the reader use this to
  /// reject structurally invalid codes (run lengths or length fields no
  /// valid encoder produces) through the same channel as reading past the
  /// end, so callers have one failure signal to check.
  void MarkOverflow() { overflow_ = true; }

 private:
  const uint8_t* data_;
  size_t size_bits_;
  size_t pos_ = 0;
  bool overflow_ = false;
};

/// Number of bits needed to represent values in [0, n]; BitsFor(0) == 0.
/// This is the ceil(log2(n + 1)) convention the paper uses for field widths.
int BitsFor(uint64_t n);

}  // namespace utcq::common

#endif  // UTCQ_COMMON_BITSTREAM_H_
