#ifndef UTCQ_COMMON_BITSTREAM_H_
#define UTCQ_COMMON_BITSTREAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace utcq::common {

/// A borrowed, immutable view of a bit stream: a pointer into bytes owned by
/// someone else (a live BitWriter or a loaded archive buffer) plus a bit
/// count. This is the currency of the read path — decoders and query
/// processors hold BitSpans and never know whether the bits came from an
/// in-memory compression run or from disk.
struct BitSpan {
  const uint8_t* data = nullptr;
  size_t size_bits = 0;

  size_t size_bytes() const { return (size_bits + 7) / 8; }
  bool empty() const { return size_bits == 0; }
};

/// Append-only MSB-first bit buffer.
///
/// All compressed artifacts in this project (TED and UTCQ alike) are built on
/// this writer: fixed-width fields, Exp-Golomb codes, PDDP codes and raw
/// bit-strings are appended in sequence and later consumed by a BitReader
/// positioned at an arbitrary bit offset (partial decompression relies on
/// that random positioning).
class BitWriter {
 public:
  BitWriter() = default;

  /// Appends the single bit `bit` (0 or 1).
  void PutBit(bool bit);

  /// Appends the lowest `width` bits of `value`, most significant bit first.
  /// `width` must be <= 64. A width of 0 appends nothing.
  void PutBits(uint64_t value, int width);

  /// Appends `count` copies of `bit`.
  void PutRun(bool bit, size_t count);

  /// Appends the contents of another writer.
  void Append(const BitWriter& other);

  /// Number of bits written so far.
  size_t size_bits() const { return size_bits_; }

  /// Number of bytes needed to hold the written bits.
  size_t size_bytes() const { return (size_bits_ + 7) / 8; }

  /// Read access to bit `pos` (0-based from the start of the stream).
  bool BitAt(size_t pos) const;

  /// Backing bytes; the final partial byte (if any) is zero-padded.
  const std::vector<uint8_t>& bytes() const { return bytes_; }

  /// Borrowed view of the written bits; invalidated by further writes.
  BitSpan span() const { return {bytes_.data(), size_bits_}; }

  void Clear();

 private:
  std::vector<uint8_t> bytes_;
  size_t size_bits_ = 0;
};

/// MSB-first reader over a byte buffer, seekable to any bit position.
class BitReader {
 public:
  /// The reader does not own the buffer; it must outlive the reader.
  BitReader(const uint8_t* data, size_t size_bits)
      : data_(data), size_bits_(size_bits) {}

  explicit BitReader(const BitWriter& w)
      : BitReader(w.bytes().data(), w.size_bits()) {}

  explicit BitReader(const BitSpan& span)
      : BitReader(span.data, span.size_bits) {}

  /// Reads one bit. Reading past the end returns 0 and sets overflow().
  bool GetBit();

  /// Reads `width` (<= 64) bits MSB-first into the low bits of the result.
  uint64_t GetBits(int width);

  /// Repositions the cursor to absolute bit `pos`.
  void Seek(size_t pos) { pos_ = pos; }

  size_t position() const { return pos_; }
  size_t size_bits() const { return size_bits_; }
  size_t remaining() const { return pos_ < size_bits_ ? size_bits_ - pos_ : 0; }
  bool overflow() const { return overflow_; }

  /// Latches overflow() true. Codecs layered on the reader use this to
  /// reject structurally invalid codes (run lengths or length fields no
  /// valid encoder produces) through the same channel as reading past the
  /// end, so callers have one failure signal to check.
  void MarkOverflow() { overflow_ = true; }

 private:
  const uint8_t* data_;
  size_t size_bits_;
  size_t pos_ = 0;
  bool overflow_ = false;
};

/// Number of bits needed to represent values in [0, n]; BitsFor(0) == 0.
/// This is the ceil(log2(n + 1)) convention the paper uses for field widths.
int BitsFor(uint64_t n);

}  // namespace utcq::common

#endif  // UTCQ_COMMON_BITSTREAM_H_
