// Streaming ingestion scenario: GPS points arrive per vehicle as a live
// stream — no corpus exists up front. The StreamingService matches them
// online (incremental Viterbi with bounded lag), seals finished sessions
// into the in-memory live shard, and periodically flushes generations into
// a crash-consistent on-disk archive set; a serve::QueryEngine over the
// tier answers where/when/range across sealed + live the whole time. At
// the end the process "restarts": a fresh service reopens the manifest and
// must answer exactly what the original answered.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.h"
#include "ingest/streaming_service.h"
#include "network/generator.h"
#include "serve/query_engine.h"
#include "shard/sharded.h"
#include "traj/generator.h"
#include "traj/profiles.h"

int main() {
  using namespace utcq;  // NOLINT

  common::Rng rng(31);
  auto profile = traj::ChengduProfile();
  profile.gps_noise_m = 12.0;
  network::CityParams city = profile.city;
  city.rows = 18;
  city.cols = 18;
  const network::RoadNetwork net = network::GenerateCity(rng, city);
  const network::GridIndex grid(net, 20);
  traj::UncertainTrajectoryGenerator gen(net, profile, 3);

  const char* tmpdir = std::getenv("TMPDIR");
  const std::string manifest =
      std::string(tmpdir != nullptr ? tmpdir : "/tmp") + "/stream_fleet.utcq";
  std::remove(manifest.c_str());

  ingest::StreamingOptions opts;
  opts.match.match.gps_sigma_m = 15.0;
  opts.match.max_pending_steps = 24;  // bounded matching lag
  opts.limits.max_points = 256;
  opts.limits.idle_timeout_s = 300;
  opts.params.default_interval_s = profile.default_interval_s;
  opts.index_params = core::StiuParams{20, 1800};

  ingest::StreamingService service(net, grid, manifest, opts);
  std::string error;
  if (!service.Open(&error)) {
    std::fprintf(stderr, "open failed: %s\n", error.c_str());
    return 1;
  }

  // --- wave 1: a fleet of vehicles streams in, interleaved ---
  constexpr size_t kVehicles = 40;
  std::vector<traj::RawTrajectory> streams;
  for (size_t v = 0; v < kVehicles; ++v) {
    streams.push_back(gen.GenerateRaw().raw);
  }
  size_t cursor = 0;
  bool more = true;
  while (more) {
    more = false;
    for (size_t v = 0; v < streams.size(); ++v) {
      if (cursor < streams[v].size()) {
        service.Push(v, streams[v][cursor]);
        more = more || cursor + 1 < streams[v].size();
      }
    }
    ++cursor;
  }
  for (size_t v = 0; v < kVehicles / 2; ++v) service.EndSession(v);
  // The other half go silent; the idle sweeper seals them.
  traj::Timestamp latest = 0;
  for (const auto& s : streams) {
    if (!s.empty()) latest = std::max(latest, s.back().t);
  }
  service.AdvanceTime(latest + opts.limits.idle_timeout_s + 1);

  const auto stats = service.stats();
  std::printf(
      "ingested %llu points: %llu matched, %llu sealed trajectories "
      "(%llu breaks, %llu discarded), %llu dropped\n",
      static_cast<unsigned long long>(stats.points),
      static_cast<unsigned long long>(stats.accepted),
      static_cast<unsigned long long>(stats.trajectories_sealed),
      static_cast<unsigned long long>(stats.segment_breaks),
      static_cast<unsigned long long>(stats.segments_discarded),
      static_cast<unsigned long long>(stats.dropped_not_finite +
                                      stats.dropped_out_of_order +
                                      stats.dropped_no_candidates));

  // --- query the live tail before anything touched disk ---
  serve::QueryEngine engine(service);
  const size_t total = engine.num_trajectories();
  if (total == 0) return 1;
  const auto live_probe = service.LiveTrajectories();
  const auto& probe_tu = live_probe.front();
  const auto probe_id = static_cast<uint32_t>(probe_tu.id);
  const auto probe_t = (probe_tu.times.front() + probe_tu.times.back()) / 2;
  const auto live_hits = engine.Where(probe_id, probe_t, 0.2);
  std::printf("live: trajectory %u at t=%lld -> %zu positions (of %zu live)\n",
              probe_id, static_cast<long long>(probe_t), live_hits.size(),
              service.num_live());

  // --- flush generation 0, keep serving ---
  if (!service.Flush(&error)) {
    std::fprintf(stderr, "flush failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("flushed: %zu sealed on disk (%zu generations), %zu live\n",
              service.num_sealed(), service.num_generations(),
              service.num_live());
  const auto sealed_hits = engine.Where(probe_id, probe_t, 0.2);
  if (sealed_hits != live_hits) {
    std::fprintf(stderr, "flush changed an answer!\n");
    return 1;
  }

  // --- wave 2: more traffic lands in the live tail; queries span tiers ---
  for (size_t v = 0; v < 10; ++v) {
    const auto raw = gen.GenerateRaw().raw;
    for (const auto& p : raw) service.Push(1000 + v, p);
    service.EndSession(1000 + v);
  }
  std::printf("wave 2: %zu sealed + %zu live = %zu served\n",
              service.num_sealed(), service.num_live(),
              engine.num_trajectories());

  // --- "restart": a fresh process reopens the archive set ---
  if (!service.Flush(&error)) {
    std::fprintf(stderr, "flush failed: %s\n", error.c_str());
    return 1;
  }
  ingest::StreamingService reopened(net, grid, manifest, opts);
  if (!reopened.Open(&error)) {
    std::fprintf(stderr, "reopen failed: %s\n", error.c_str());
    return 1;
  }
  serve::QueryEngine engine2(reopened);
  const auto reopened_hits = engine2.Where(probe_id, probe_t, 0.2);
  std::printf("restart: %zu trajectories reopened from %zu generations\n",
              reopened.num_trajectories(), reopened.num_generations());
  if (reopened_hits != live_hits) {
    std::fprintf(stderr, "restart changed an answer!\n");
    return 1;
  }
  std::printf("probe answer identical live, post-flush and after restart\n");

  for (uint32_t g = 0; g < reopened.num_generations(); ++g) {
    std::remove(shard::ShardArchivePath(manifest, g).c_str());
  }
  std::remove(manifest.c_str());
  return live_hits.empty() ? 1 : 0;
}
