// End-to-end pipeline: raw noisy GPS traces -> probabilistic map matching
// (HMM, Section 2.1) -> network-constrained uncertain trajectories ->
// UTCQ compression -> *a real on-disk archive* -> reopen -> queries. This is
// the full life of a trajectory as the paper's compress-once/query-many
// premise describes it: the compressor and the original corpus are gone by
// the time the queries run; only the road network and the archive file
// survive.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "archive/archive.h"
#include "common/rng.h"
#include "core/utcq.h"
#include "matching/hmm_matcher.h"
#include "network/generator.h"
#include "traj/generator.h"
#include "traj/profiles.h"
#include "traj/statistics.h"

int main() {
  using namespace utcq;  // NOLINT

  common::Rng rng(31);
  traj::DatasetProfile profile = traj::ChengduProfile();
  profile.gps_noise_m = 25.0;  // deliberately noisy receivers
  network::CityParams city = profile.city;
  city.rows = 20;
  city.cols = 20;
  const network::RoadNetwork net = network::GenerateCity(rng, city);
  const network::GridIndex grid(net, 24);

  // --- probabilistic map matching of raw traces ---
  traj::UncertainTrajectoryGenerator gen(net, profile, 3);
  matching::MatchParams mparams;
  mparams.gps_sigma_m = 25.0;
  mparams.max_instances = 8;
  const matching::HmmMatcher matcher(net, grid, mparams);

  traj::UncertainCorpus corpus;
  size_t raw_points = 0;
  size_t failures = 0;
  uint64_t next_id = 0;
  while (corpus.size() < 300) {
    const auto trace = gen.GenerateRaw();
    raw_points += trace.raw.size();
    auto tu = matcher.Match(trace.raw);
    if (!tu.has_value() || traj::Validate(net, *tu) != "") {
      ++failures;
      if (failures > 2000) break;
      continue;
    }
    tu->id = next_id++;
    corpus.push_back(std::move(*tu));
  }
  if (corpus.empty()) return 1;
  const auto summary = traj::Summarize(net, corpus);
  std::printf(
      "matched %zu traces (%zu raw fixes, %zu rejected); avg %.1f instances "
      "per trace — the uncertainty the matcher exposes\n",
      corpus.size(), raw_points, failures, summary.avg_instances);

  // Remember a query the archived corpus must still answer later.
  const auto t_mid = (corpus[0].times.front() + corpus[0].times.back()) / 2;

  const char* tmpdir = std::getenv("TMPDIR");
  const std::string path =
      std::string(tmpdir != nullptr ? tmpdir : "/tmp") + "/gps_corpus.utcq";

  // --- compress + save; compressor, index and corpus all die with this
  // scope, so everything after it runs purely off the file ---
  {
    core::UtcqParams params;
    params.default_interval_s = profile.default_interval_s;
    const core::UtcqSystem sys(net, grid, corpus, params,
                               core::StiuParams{24, 1800});
    std::printf("%s\n", core::FormatReport("compress", sys.report()).c_str());

    std::string error;
    if (!archive::ArchiveWriter(sys.compressed(), &sys.index())
             .Save(path, &error)) {
      std::fprintf(stderr, "save failed: %s\n", error.c_str());
      return 1;
    }
    std::printf("archived %zu trajectories to %s\n", corpus.size(),
                path.c_str());
  }

  // --- reopen from disk and query ---
  archive::ArchiveReader reader;
  std::string error;
  if (!reader.Open(path, &error)) {
    std::fprintf(stderr, "open failed: %s\n", error.c_str());
    return 1;
  }
  const network::GridIndex query_grid(net, reader.index_cells_per_side());
  const auto index = reader.LoadIndex(query_grid, &error);
  if (index == nullptr) {
    std::fprintf(stderr, "index load failed: %s\n", error.c_str());
    return 1;
  }
  const core::UtcqQueryProcessor queries(net, reader.view(), *index);

  // Where was trace 0 halfway through its trip, per instance?
  const auto hits = queries.Where(0, t_mid, 0.0);
  std::printf("trace 0 at t=%lld (from the reopened archive): %zu possible "
              "positions\n",
              static_cast<long long>(t_mid), hits.size());
  for (const auto& hit : hits) {
    std::printf("  p=%.3f edge=%u ndist=%.1f m\n", hit.probability,
                hit.position.edge, hit.position.ndist);
  }

  // And when did it pass the first of those positions?
  if (!hits.empty()) {
    const auto& pos = hits.front().position;
    const double rd = pos.ndist / net.edge(pos.edge).length;
    const auto whens = queries.When(0, pos.edge, rd, 0.0);
    std::printf("trace 0 passed edge %u at %zu candidate times\n", pos.edge,
                whens.size());
  }

  std::remove(path.c_str());
  return hits.empty() ? 1 : 0;
}
