// End-to-end pipeline: raw noisy GPS traces -> probabilistic map matching
// (HMM, Section 2.1) -> network-constrained uncertain trajectories ->
// UTCQ compression -> queries. This is the full life of a trajectory as the
// paper describes it, starting from (x, y, t) fixes rather than from
// already-matched instances.

#include <cstdio>

#include "common/rng.h"
#include "core/utcq.h"
#include "matching/hmm_matcher.h"
#include "network/generator.h"
#include "traj/generator.h"
#include "traj/profiles.h"
#include "traj/statistics.h"

int main() {
  using namespace utcq;  // NOLINT

  common::Rng rng(31);
  traj::DatasetProfile profile = traj::ChengduProfile();
  profile.gps_noise_m = 25.0;  // deliberately noisy receivers
  network::CityParams city = profile.city;
  city.rows = 20;
  city.cols = 20;
  const network::RoadNetwork net = network::GenerateCity(rng, city);
  const network::GridIndex grid(net, 24);

  // --- probabilistic map matching of raw traces ---
  traj::UncertainTrajectoryGenerator gen(net, profile, 3);
  matching::MatchParams mparams;
  mparams.gps_sigma_m = 25.0;
  mparams.max_instances = 8;
  const matching::HmmMatcher matcher(net, grid, mparams);

  traj::UncertainCorpus corpus;
  size_t raw_points = 0;
  size_t failures = 0;
  uint64_t next_id = 0;
  while (corpus.size() < 300) {
    const auto trace = gen.GenerateRaw();
    raw_points += trace.raw.size();
    auto tu = matcher.Match(trace.raw);
    if (!tu.has_value() || traj::Validate(net, *tu) != "") {
      ++failures;
      if (failures > 2000) break;
      continue;
    }
    tu->id = next_id++;
    corpus.push_back(std::move(*tu));
  }
  const auto summary = traj::Summarize(net, corpus);
  std::printf(
      "matched %zu traces (%zu raw fixes, %zu rejected); avg %.1f instances "
      "per trace — the uncertainty the matcher exposes\n",
      corpus.size(), raw_points, failures, summary.avg_instances);

  // --- compress + query ---
  core::UtcqParams params;
  params.default_interval_s = profile.default_interval_s;
  const core::UtcqSystem sys(net, grid, corpus, params,
                             core::StiuParams{24, 1800});
  std::printf("%s\n", core::FormatReport("archive", sys.report()).c_str());

  // Where was trace 0 halfway through its trip, per instance?
  if (!corpus.empty()) {
    const auto& tu = corpus[0];
    const auto t_mid = (tu.times.front() + tu.times.back()) / 2;
    const auto hits = sys.queries().Where(0, t_mid, 0.0);
    std::printf("trace 0 at t=%lld: %zu possible positions\n",
                static_cast<long long>(t_mid), hits.size());
    for (const auto& hit : hits) {
      std::printf("  p=%.3f edge=%u ndist=%.1f m\n", hit.probability,
                  hit.position.edge, hit.position.ndist);
    }
  }
  return corpus.empty() ? 1 : 0;
}
