// Query-serving scenario: an archive of compressed uncertain trajectories
// answers probabilistic where / when / range queries online — through
// serve::QueryEngine, the recommended read path: it batches requests,
// amortizes decodes across repeated accesses via the decoded-trajectory
// cache, and stays hit-for-hit identical to the raw query processors
// (spot-checked against the uncompressed PlainQueryEngine at the end).

#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/plain_query.h"
#include "core/utcq.h"
#include "network/generator.h"
#include "serve/query_engine.h"
#include "traj/generator.h"
#include "traj/profiles.h"

int main() {
  using namespace utcq;  // NOLINT

  common::Rng rng(5);
  const traj::DatasetProfile profile = traj::DenmarkProfile();
  network::CityParams city = profile.city;
  city.rows = 28;
  city.cols = 28;
  const network::RoadNetwork net = network::GenerateCity(rng, city);
  traj::UncertainTrajectoryGenerator gen(net, profile, 11);
  const traj::UncertainCorpus corpus = gen.GenerateCorpus(1000);

  core::UtcqParams params;
  params.default_interval_s = profile.default_interval_s;
  params.eta_p = profile.eta_p;
  params.num_pivots = 2;
  const network::GridIndex grid(net, 32);
  const core::UtcqSystem sys(net, grid, corpus, params,
                             core::StiuParams{32, 1200});
  std::printf("%s\n", core::FormatReport("archive", sys.report()).c_str());

  // --- the serving layer over the compressed corpus ---
  serve::EngineOptions eopts;
  eopts.cache_budget_bytes = 64ull << 20;
  serve::QueryEngine engine(sys.queries(), eopts);

  // --- a mixed query batch, built once, executed through ExecuteBatch:
  // requests for the same trajectory share one decode ---
  common::Rng qrng(17);
  const auto bbox = net.bounding_box();
  std::vector<serve::QueryRequest> requests;
  for (int i = 0; i < 400; ++i) {
    const auto j =
        static_cast<uint32_t>(qrng.UniformInt(0, corpus.size() - 1));
    const auto& tu = corpus[j];
    const auto t =
        tu.times.front() +
        qrng.UniformInt(0, std::max<int64_t>(
                               tu.times.back() - tu.times.front(), 1));
    requests.push_back(serve::QueryRequest::MakeWhere(j, t, 0.3));

    const auto& inst = tu.instances[static_cast<size_t>(
        qrng.UniformInt(0, tu.instances.size() - 1))];
    const auto& loc = inst.locations[static_cast<size_t>(
        qrng.UniformInt(0, inst.locations.size() - 1))];
    requests.push_back(serve::QueryRequest::MakeWhen(
        j, inst.path[loc.path_index], loc.rd, 0.3));

    const double cx = qrng.Uniform(bbox.min_x, bbox.max_x);
    const double cy = qrng.Uniform(bbox.min_y, bbox.max_y);
    requests.push_back(serve::QueryRequest::MakeRange(
        {cx - 400, cy - 400, cx + 400, cy + 400}, t, 0.5));
  }

  common::Stopwatch watch;
  const auto results = engine.ExecuteBatch(requests);
  const double batch_ms = watch.ElapsedMillis();

  size_t where_hits = 0;
  size_t when_hits = 0;
  size_t range_hits = 0;
  for (const auto& r : results) {
    where_hits += r.where.size();
    when_hits += r.when.size();
    range_hits += r.range.size();
  }
  std::printf("%zu queries in %.1f ms (%.1f us/query, batched)\n",
              requests.size(), batch_ms,
              batch_ms * 1000.0 / static_cast<double>(requests.size()));
  std::printf("hits: where=%zu when=%zu range=%zu\n", where_hits, when_hits,
              range_hits);

  // Re-run the same requests one at a time against the warm cache.
  watch.Restart();
  for (const auto& req : requests) engine.Execute(req);
  const double warm_ms = watch.ElapsedMillis();
  const auto stats = engine.stats();
  std::printf(
      "warm re-run: %.1f ms; cache: %.1f%% hit rate, %zu resident entries "
      "(%.1f MiB), p50 %.1f us, p99 %.1f us\n",
      warm_ms, 100.0 * stats.hit_rate(), stats.cache_resident_entries,
      static_cast<double>(stats.cache_resident_bytes) / (1024.0 * 1024.0),
      stats.p50_latency_us, stats.p99_latency_us);

  // --- spot-check against the uncompressed ground truth ---
  const core::PlainQueryEngine plain(net, corpus);
  size_t agree = 0;
  for (int i = 0; i < 50; ++i) {
    const size_t j =
        static_cast<size_t>(qrng.UniformInt(0, corpus.size() - 1));
    const auto& tu = corpus[j];
    const auto t =
        tu.times.front() +
        qrng.UniformInt(0, std::max<int64_t>(
                               tu.times.back() - tu.times.front(), 1));
    if (engine.Where(static_cast<uint32_t>(j), t, 0.3).size() ==
        plain.Where(j, t, 0.3).size()) {
      ++agree;
    }
  }
  std::printf("ground-truth agreement on 50 where queries: %zu/50\n", agree);
  return agree == 50 ? 0 : 1;
}
