// Query-serving scenario: an archive of compressed uncertain trajectories
// answers probabilistic where / when / range queries online. Shows the
// effect of the StIU index and the paper's filtering lemmas (Section 5.4):
// the QueryStats counters expose how many candidates Lemmas 1-4 eliminated
// before any decompression happened.

#include <cstdio>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/plain_query.h"
#include "core/utcq.h"
#include "network/generator.h"
#include "traj/generator.h"
#include "traj/profiles.h"

int main() {
  using namespace utcq;  // NOLINT

  common::Rng rng(5);
  const traj::DatasetProfile profile = traj::DenmarkProfile();
  network::CityParams city = profile.city;
  city.rows = 28;
  city.cols = 28;
  const network::RoadNetwork net = network::GenerateCity(rng, city);
  traj::UncertainTrajectoryGenerator gen(net, profile, 11);
  const traj::UncertainCorpus corpus = gen.GenerateCorpus(1000);

  core::UtcqParams params;
  params.default_interval_s = profile.default_interval_s;
  params.eta_p = profile.eta_p;
  params.num_pivots = 2;
  const network::GridIndex grid(net, 32);
  const core::UtcqSystem sys(net, grid, corpus, params,
                             core::StiuParams{32, 1200});
  std::printf("%s\n", core::FormatReport("archive", sys.report()).c_str());

  // --- a mixed query batch ---
  common::Rng qrng(17);
  const auto bbox = net.bounding_box();
  core::QueryStats stats;
  size_t where_hits = 0;
  size_t when_hits = 0;
  size_t range_hits = 0;

  common::Stopwatch watch;
  for (int i = 0; i < 400; ++i) {
    const size_t j =
        static_cast<size_t>(qrng.UniformInt(0, corpus.size() - 1));
    const auto& tu = corpus[j];
    const auto t =
        tu.times.front() +
        qrng.UniformInt(0, std::max<int64_t>(
                               tu.times.back() - tu.times.front(), 1));
    where_hits += sys.queries().Where(j, t, 0.3, &stats).size();

    const auto& inst = tu.instances[static_cast<size_t>(
        qrng.UniformInt(0, tu.instances.size() - 1))];
    const auto& loc = inst.locations[static_cast<size_t>(
        qrng.UniformInt(0, inst.locations.size() - 1))];
    when_hits += sys.queries()
                     .When(j, inst.path[loc.path_index], loc.rd, 0.3, &stats)
                     .size();

    const double cx = qrng.Uniform(bbox.min_x, bbox.max_x);
    const double cy = qrng.Uniform(bbox.min_y, bbox.max_y);
    const network::Rect re{cx - 400, cy - 400, cx + 400, cy + 400};
    range_hits += sys.queries().Range(re, t, 0.5, &stats).size();
  }
  const double total_ms = watch.ElapsedMillis();

  std::printf("1200 queries in %.1f ms (%.1f us/query)\n", total_ms,
              total_ms * 1000.0 / 1200.0);
  std::printf("hits: where=%zu when=%zu range=%zu\n", where_hits, when_hits,
              range_hits);
  std::printf(
      "filtering: candidates=%llu, lemma1-pruned groups=%llu,\n"
      "           lemma2 subpath decisions=%llu, lemma3 early accepts=%llu,\n"
      "           lemma4-pruned trajectories=%llu, instances decoded=%llu\n",
      static_cast<unsigned long long>(stats.candidates),
      static_cast<unsigned long long>(stats.pruned_lemma1),
      static_cast<unsigned long long>(stats.pruned_lemma2),
      static_cast<unsigned long long>(stats.accepted_lemma3),
      static_cast<unsigned long long>(stats.pruned_lemma4),
      static_cast<unsigned long long>(stats.instances_decoded));

  // --- spot-check against the uncompressed ground truth ---
  const core::PlainQueryEngine plain(net, corpus);
  size_t agree = 0;
  for (int i = 0; i < 50; ++i) {
    const size_t j =
        static_cast<size_t>(qrng.UniformInt(0, corpus.size() - 1));
    const auto& tu = corpus[j];
    const auto t =
        tu.times.front() +
        qrng.UniformInt(0, std::max<int64_t>(
                               tu.times.back() - tu.times.front(), 1));
    if (sys.queries().Where(j, t, 0.3).size() ==
        plain.Where(j, t, 0.3).size()) {
      ++agree;
    }
  }
  std::printf("ground-truth agreement on 50 where queries: %zu/50\n", agree);
  return 0;
}
