// Fleet archival scenario (the paper's motivating workload): a day of
// uncertain taxi trajectories is archived. Compares UTCQ against the TED
// baseline on the same corpus — compression ratio per component, time and
// peak working set — shows that decompression is faithful, and then scales
// the build: the same fleet compressed through the sharded parallel
// pipeline into a multi-file archive set, reopened, and queried.

#include <cstdio>
#include <string>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/decoder.h"
#include "core/utcq.h"
#include "network/csv_io.h"
#include "network/generator.h"
#include "serve/query_engine.h"
#include "shard/sharded.h"
#include "ted/ted_compress.h"
#include "traj/generator.h"
#include "traj/profiles.h"
#include "traj/statistics.h"

int main(int argc, char** argv) {
  using namespace utcq;  // NOLINT
  const size_t fleet = argc > 1 ? static_cast<size_t>(std::atol(argv[1])) : 2000;

  common::Rng rng(99);
  const traj::DatasetProfile profile = traj::HangzhouProfile();
  network::CityParams city = profile.city;
  city.rows = 32;
  city.cols = 32;
  const network::RoadNetwork net = network::GenerateCity(rng, city);
  network::SaveCsv(net, "/tmp/utcq_fleet_network");  // reusable via LoadCsv

  traj::UncertainTrajectoryGenerator gen(net, profile, 2024);
  const traj::UncertainCorpus corpus = gen.GenerateCorpus(fleet);
  const auto summary = traj::Summarize(net, corpus);
  std::printf(
      "fleet: %zu uncertain trajectories, avg %.1f instances (max %zu), "
      "avg %.1f edges, raw %.2f MiB\n",
      summary.trajectories, summary.avg_instances, summary.max_instances,
      summary.avg_edges, summary.raw_bytes / (1024.0 * 1024.0));

  const auto raw = traj::MeasureRawSize(net, corpus);

  // --- UTCQ ---
  core::UtcqParams uparams;
  uparams.default_interval_s = profile.default_interval_s;
  uparams.eta_p = profile.eta_p;
  common::Stopwatch uw;
  core::UtcqCompressor ucomp(net, uparams);
  std::vector<std::vector<core::NrefFactorLayout>> ulayouts;
  const auto cc = ucomp.Compress(corpus, &ulayouts);
  const auto ureport = core::MakeReport(raw, cc.compressed_bits(),
                                        uw.ElapsedSeconds(),
                                        cc.peak_memory_bytes());
  std::printf("%s\n", core::FormatReport("UTCQ", ureport).c_str());

  // StIU build for the unsharded corpus: the sharded pipeline below builds
  // per-shard indexes as part of its timing, so the fair single-threaded
  // baseline is compression + index, not compression alone.
  const network::GridIndex grid(net, 32);
  common::Stopwatch iw;
  const core::StiuIndex uindex(net, grid, corpus, cc, ulayouts,
                               core::StiuParams{32, 1800});
  const double unsharded_seconds = ureport.seconds + iw.ElapsedSeconds();

  // --- TED baseline ---
  ted::TedParams tparams;
  tparams.eta_p = profile.eta_p;
  common::Stopwatch tw;
  ted::TedCompressor tcomp(net, tparams);
  const auto tc = tcomp.Compress(corpus);
  const auto treport = core::MakeReport(raw, tc.compressed_bits(),
                                        tw.ElapsedSeconds(),
                                        tc.peak_memory_bytes());
  std::printf("%s\n", core::FormatReport("TED ", treport).c_str());
  std::printf("UTCQ/TED compression-ratio advantage: %.2fx; memory: %.1fx\n",
              ureport.total / treport.total,
              static_cast<double>(treport.peak_memory_bytes) /
                  static_cast<double>(ureport.peak_memory_bytes));

  // --- fidelity: decompress everything and verify paths are lossless ---
  core::UtcqDecoder decoder(net, cc);
  const auto rebuilt = decoder.DecompressAll();
  size_t mismatches = 0;
  for (size_t j = 0; j < corpus.size(); ++j) {
    for (size_t w = 0; w < corpus[j].instances.size(); ++w) {
      if (rebuilt[j].instances[w].path != corpus[j].instances[w].path) {
        ++mismatches;
      }
    }
  }
  std::printf("decompression check: %zu path mismatches (expected 0)\n",
              mismatches);
  if (mismatches != 0) return 1;

  // --- sharded parallel pipeline: same fleet, 8 shards on all cores ---
  shard::ShardOptions sopts;
  sopts.num_shards = 8;
  const shard::ShardedCompressor scomp(net, grid, uparams,
                                       core::StiuParams{32, 1800}, sopts);
  common::Stopwatch sw;
  const shard::ShardedBuild build = scomp.Compress(corpus);
  const double sharded_seconds = sw.ElapsedSeconds();
  std::printf(
      "sharded build: %u shards on %u threads in %.3fs (%.2fx vs "
      "single-threaded compress+index; bit-identical payload: %s)\n",
      build.plan.num_shards(), common::DefaultThreads(), sharded_seconds,
      unsharded_seconds / sharded_seconds,
      build.total_bits() == cc.total_bits() ? "yes" : "NO");

  const std::string manifest = "/tmp/utcq_fleet_set.utcq";
  std::string error;
  if (!build.Save(manifest, &error)) {
    std::fprintf(stderr, "archive-set save failed: %s\n", error.c_str());
    return 1;
  }
  shard::ShardedCorpus sharded;
  if (!sharded.Open(net, manifest, &error)) {
    std::fprintf(stderr, "archive-set open failed: %s\n", error.c_str());
    return 1;
  }
  const auto bbox = net.bounding_box();
  const network::Rect downtown{
      bbox.min_x + 0.25 * (bbox.max_x - bbox.min_x),
      bbox.min_y + 0.25 * (bbox.max_y - bbox.min_y),
      bbox.min_x + 0.75 * (bbox.max_x - bbox.min_x),
      bbox.min_y + 0.75 * (bbox.max_y - bbox.min_y)};
  const auto rush = (corpus[0].times.front() + corpus[0].times.back()) / 2;
  const auto in_range = sharded.Range(downtown, rush, 0.3);
  std::printf(
      "reopened archive set (%zu shards, %zu trajectories); fan-out range "
      "query over downtown at t=%lld: %zu trajectories\n",
      sharded.num_shards(), sharded.num_trajectories(),
      static_cast<long long>(rush), in_range.size());

  // --- query serving: the same fan-out through the cached engine ---------
  // Repeated range queries re-decode their candidates from the bitstreams
  // every time on the uncached path; the engine decodes each trajectory
  // once into its LRU cache and serves the rest from memory.
  constexpr int kReps = 20;
  common::Stopwatch uncached_watch;
  for (int rep = 0; rep < kReps; ++rep) {
    if (sharded.Range(downtown, rush, 0.3) != in_range) return 1;
  }
  const double uncached_s = uncached_watch.ElapsedSeconds();

  serve::QueryEngine engine(sharded);
  if (engine.Range(downtown, rush, 0.3) != in_range) return 1;  // cold fill
  common::Stopwatch cached_watch;
  for (int rep = 0; rep < kReps; ++rep) {
    if (engine.Range(downtown, rush, 0.3) != in_range) return 1;
  }
  const double cached_s = cached_watch.ElapsedSeconds();
  const auto estats = engine.stats();
  std::printf(
      "cached engine: %d warm fan-out range queries in %.3fs vs %.3fs "
      "uncached (%.1fx); hit rate %.3f, %zu trajectories resident "
      "(%.1f MiB), p50 %.0fus p99 %.0fus\n",
      kReps, cached_s, uncached_s,
      cached_s > 0.0 ? uncached_s / cached_s : 0.0, estats.hit_rate(),
      estats.cache_resident_entries,
      static_cast<double>(estats.cache_resident_bytes) / (1024.0 * 1024.0),
      estats.p50_latency_us, estats.p99_latency_us);

  for (uint32_t s = 0; s < build.plan.num_shards(); ++s) {
    std::remove(shard::ShardArchivePath(manifest, s).c_str());
  }
  std::remove(manifest.c_str());
  return 0;
}
