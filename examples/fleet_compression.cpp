// Fleet archival scenario (the paper's motivating workload): a day of
// uncertain taxi trajectories is archived. Compares UTCQ against the TED
// baseline on the same corpus — compression ratio per component, time and
// peak working set — and shows that decompression is faithful.

#include <cstdio>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/decoder.h"
#include "core/utcq.h"
#include "network/csv_io.h"
#include "network/generator.h"
#include "ted/ted_compress.h"
#include "traj/generator.h"
#include "traj/profiles.h"
#include "traj/statistics.h"

int main(int argc, char** argv) {
  using namespace utcq;  // NOLINT
  const size_t fleet = argc > 1 ? static_cast<size_t>(std::atol(argv[1])) : 2000;

  common::Rng rng(99);
  const traj::DatasetProfile profile = traj::HangzhouProfile();
  network::CityParams city = profile.city;
  city.rows = 32;
  city.cols = 32;
  const network::RoadNetwork net = network::GenerateCity(rng, city);
  network::SaveCsv(net, "/tmp/utcq_fleet_network");  // reusable via LoadCsv

  traj::UncertainTrajectoryGenerator gen(net, profile, 2024);
  const traj::UncertainCorpus corpus = gen.GenerateCorpus(fleet);
  const auto summary = traj::Summarize(net, corpus);
  std::printf(
      "fleet: %zu uncertain trajectories, avg %.1f instances (max %zu), "
      "avg %.1f edges, raw %.2f MiB\n",
      summary.trajectories, summary.avg_instances, summary.max_instances,
      summary.avg_edges, summary.raw_bytes / (1024.0 * 1024.0));

  const auto raw = traj::MeasureRawSize(net, corpus);

  // --- UTCQ ---
  core::UtcqParams uparams;
  uparams.default_interval_s = profile.default_interval_s;
  uparams.eta_p = profile.eta_p;
  common::Stopwatch uw;
  core::UtcqCompressor ucomp(net, uparams);
  const auto cc = ucomp.Compress(corpus);
  const auto ureport = core::MakeReport(raw, cc.compressed_bits(),
                                        uw.ElapsedSeconds(),
                                        cc.peak_memory_bytes());
  std::printf("%s\n", core::FormatReport("UTCQ", ureport).c_str());

  // --- TED baseline ---
  ted::TedParams tparams;
  tparams.eta_p = profile.eta_p;
  common::Stopwatch tw;
  ted::TedCompressor tcomp(net, tparams);
  const auto tc = tcomp.Compress(corpus);
  const auto treport = core::MakeReport(raw, tc.compressed_bits(),
                                        tw.ElapsedSeconds(),
                                        tc.peak_memory_bytes());
  std::printf("%s\n", core::FormatReport("TED ", treport).c_str());
  std::printf("UTCQ/TED compression-ratio advantage: %.2fx; memory: %.1fx\n",
              ureport.total / treport.total,
              static_cast<double>(treport.peak_memory_bytes) /
                  static_cast<double>(ureport.peak_memory_bytes));

  // --- fidelity: decompress everything and verify paths are lossless ---
  core::UtcqDecoder decoder(net, cc);
  const auto rebuilt = decoder.DecompressAll();
  size_t mismatches = 0;
  for (size_t j = 0; j < corpus.size(); ++j) {
    for (size_t w = 0; w < corpus[j].instances.size(); ++w) {
      if (rebuilt[j].instances[w].path != corpus[j].instances[w].path) {
        ++mismatches;
      }
    }
  }
  std::printf("decompression check: %zu path mismatches (expected 0)\n",
              mismatches);
  return mismatches == 0 ? 0 : 1;
}
