// Quickstart: compress a small fleet of uncertain trajectories and answer
// probabilistic queries on the compressed form — the 60-second tour of the
// public API.
//
//   1. build (or load) a road network
//   2. obtain network-constrained uncertain trajectories (here: generated)
//   3. compress + index them with UtcqSystem
//   4. run probabilistic where / when / range queries without full
//      decompression

#include <cstdio>

#include "common/rng.h"
#include "core/utcq.h"
#include "network/generator.h"
#include "traj/generator.h"
#include "traj/profiles.h"

int main() {
  using namespace utcq;  // NOLINT

  // 1. A synthetic city: ~40x40 blocks, two-way streets, a few one-ways.
  common::Rng rng(42);
  network::CityParams city;
  city.rows = 24;
  city.cols = 24;
  const network::RoadNetwork net = network::GenerateCity(rng, city);
  std::printf("network: %zu vertices, %zu edges (avg out-degree %.2f)\n",
              net.num_vertices(), net.num_edges(), net.average_out_degree());

  // 2. 500 uncertain taxi trajectories with Chengdu-like statistics.
  const traj::DatasetProfile profile = traj::ChengduProfile();
  traj::UncertainTrajectoryGenerator gen(net, profile, /*seed=*/7);
  const traj::UncertainCorpus corpus = gen.GenerateCorpus(500);

  // 3. Compress and index.
  core::UtcqParams params;
  params.default_interval_s = profile.default_interval_s;  // Ts for SIAR
  params.eta_d = 1.0 / 128.0;  // relative-distance error bound
  params.eta_p = 1.0 / 512.0;  // probability error bound
  const network::GridIndex grid(net, 32);
  const core::UtcqSystem sys(net, grid, corpus, params,
                             core::StiuParams{32, 1800});
  std::printf("%s\n",
              core::FormatReport("compressed", sys.report()).c_str());
  std::printf("StIU index: %.1f KiB\n", sys.index_size_bytes() / 1024.0);

  // 4a. where: positions of trajectory 0's instances (p >= 0.2) at the
  //     midpoint of its time span.
  const auto& tu = corpus[0];
  const traj::Timestamp t_mid = (tu.times.front() + tu.times.back()) / 2;
  for (const auto& hit : sys.queries().Where(0, t_mid, 0.2)) {
    std::printf("where: instance %u (p=%.2f) at edge %u, %.1f m from start\n",
                hit.instance, hit.probability, hit.position.edge,
                hit.position.ndist);
  }

  // 4b. when: when did instances (p >= 0.1) pass the first sampled
  //     location of the most likely instance?
  const auto& inst = tu.instances[0];
  const network::EdgeId edge = inst.path[inst.locations[0].path_index];
  for (const auto& hit :
       sys.queries().When(0, edge, inst.locations[0].rd, 0.1)) {
    std::printf("when: instance %u (p=%.2f) at t=%lld s\n", hit.instance,
                hit.probability, static_cast<long long>(hit.t));
  }

  // 4c. range: which trajectories were inside a 600 m box around that
  //     location when trajectory 0 started there (probability mass >= 0.5)?
  const network::Vertex xy =
      net.PointOnEdge(edge, inst.locations[0].rd * net.edge(edge).length);
  const network::Rect box{xy.x - 300, xy.y - 300, xy.x + 300, xy.y + 300};
  const auto result = sys.queries().Range(box, tu.times.front(), 0.5);
  std::printf("range: %zu trajectories in the box at t=%lld\n", result.size(),
              static_cast<long long>(tu.times.front()));
  return 0;
}
