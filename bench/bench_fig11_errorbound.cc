// Fig. 11: effect of the PDDP error bounds on query accuracy.
//  11a — average difference of where (meters) and when (seconds) results
//        versus the uncompressed ground truth as eta_D varies 1/128..1/8.
//  11b — F1 score of where/when result sets as eta_p varies 1/2048..1/128
//        (quantized probabilities can flip instances across alpha).
//
// Paper shape: differences stay small (a few meters / fractions of a
// second at the default bounds) and F1 stays close to 1.

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_common.h"
#include "core/plain_query.h"
#include "core/utcq.h"

namespace {

using namespace utcq;          // NOLINT
using namespace utcq::bench;   // NOLINT

struct Accuracy {
  double where_diff_m = 0.0;
  double when_diff_s = 0.0;
  double where_f1 = 1.0;
  double when_f1 = 1.0;
};

Accuracy Evaluate(const Workload& w, double eta_d, double eta_p) {
  core::UtcqParams params;
  params.default_interval_s = w.profile.default_interval_s;
  params.eta_d = eta_d;
  params.eta_p = eta_p;
  const network::GridIndex grid(w.net, 32);
  const core::UtcqSystem sys(w.net, grid, w.corpus, params, {32, 1800});
  const core::PlainQueryEngine plain(w.net, w.corpus);

  common::Rng rng(55);
  Accuracy acc;
  double where_sum = 0.0;
  size_t where_n = 0;
  double when_sum = 0.0;
  size_t when_n = 0;
  size_t tp_where = 0, fp_where = 0, fn_where = 0;
  size_t tp_when = 0, fp_when = 0, fn_when = 0;

  for (int trial = 0; trial < 250; ++trial) {
    const size_t j =
        static_cast<size_t>(rng.UniformInt(0, w.corpus.size() - 1));
    const auto& tu = w.corpus[j];
    const double alpha = rng.Uniform(0.05, 0.6);

    // --- where ---
    const traj::Timestamp t =
        tu.times.front() +
        rng.UniformInt(0, std::max<int64_t>(
                              tu.times.back() - tu.times.front(), 1));
    const auto got = sys.queries().Where(j, t, alpha);
    const auto want = plain.Where(j, t, alpha);
    for (const auto& g : got) {
      bool matched = false;
      for (const auto& p : want) {
        if (p.instance != g.instance) continue;
        matched = true;
        const auto a = w.net.PointOnEdge(g.position.edge, g.position.ndist);
        const auto b = w.net.PointOnEdge(p.position.edge, p.position.ndist);
        where_sum += network::Distance(a.x, a.y, b.x, b.y);
        ++where_n;
        break;
      }
      matched ? ++tp_where : ++fp_where;
    }
    for (const auto& p : want) {
      bool matched = false;
      for (const auto& g : got) matched = matched || g.instance == p.instance;
      if (!matched) ++fn_where;
    }

    // --- when ---
    const auto& inst = tu.instances[static_cast<size_t>(
        rng.UniformInt(0, tu.instances.size() - 1))];
    const auto& loc = inst.locations[static_cast<size_t>(
        rng.UniformInt(0, inst.locations.size() - 1))];
    const network::EdgeId edge = inst.path[loc.path_index];
    const auto got_when = sys.queries().When(j, edge, loc.rd, alpha);
    const auto want_when = plain.When(j, edge, loc.rd, alpha);
    for (const auto& g : got_when) {
      bool matched = false;
      for (const auto& p : want_when) {
        if (p.instance != g.instance) continue;
        matched = true;
        when_sum += std::abs(static_cast<double>(g.t - p.t));
        ++when_n;
        break;
      }
      matched ? ++tp_when : ++fp_when;
    }
    for (const auto& p : want_when) {
      bool matched = false;
      for (const auto& g : got_when) {
        matched = matched || g.instance == p.instance;
      }
      if (!matched) ++fn_when;
    }
  }

  const auto f1 = [](size_t tp, size_t fp, size_t fn) {
    const double denom = 2.0 * tp + fp + fn;
    return denom > 0 ? 2.0 * tp / denom : 1.0;
  };
  acc.where_diff_m = where_n > 0 ? where_sum / where_n : 0.0;
  acc.when_diff_s = when_n > 0 ? when_sum / when_n : 0.0;
  acc.where_f1 = f1(tp_where, fp_where, fn_where);
  acc.when_f1 = f1(tp_when, fp_when, fn_when);
  return acc;
}

void BM_EtaD(benchmark::State& state, traj::DatasetProfile profile,
             double eta_d) {
  const auto w = MakeWorkload(profile, TrajectoryCount(150));
  Accuracy acc;
  for (auto _ : state) {
    acc = Evaluate(*w, eta_d, profile.eta_p);
    benchmark::DoNotOptimize(acc.where_diff_m);
  }
  state.counters["where_diff_m"] = acc.where_diff_m;
  state.counters["when_diff_s"] = acc.when_diff_s;
}

void BM_EtaP(benchmark::State& state, traj::DatasetProfile profile,
             double eta_p) {
  const auto w = MakeWorkload(profile, TrajectoryCount(150));
  Accuracy acc;
  for (auto _ : state) {
    acc = Evaluate(*w, 1.0 / 128.0, eta_p);
    benchmark::DoNotOptimize(acc.where_f1);
  }
  state.counters["where_F1"] = acc.where_f1;
  state.counters["when_F1"] = acc.when_f1;
}

}  // namespace

int main(int argc, char** argv) {
  const auto profiles = utcq::traj::AllProfiles();
  for (const auto& profile : {profiles[1], profiles[2]}) {  // CD, HZ (paper)
    for (const int denom : {128, 64, 32, 16, 8}) {
      benchmark::RegisterBenchmark(
          ("Fig11a/" + profile.name + "/eta_d:1/" + std::to_string(denom))
              .c_str(),
          BM_EtaD, profile, 1.0 / denom)
          ->Unit(benchmark::kMillisecond);
    }
    for (const int denom : {2048, 1024, 512, 256, 128}) {
      benchmark::RegisterBenchmark(
          ("Fig11b/" + profile.name + "/eta_p:1/" + std::to_string(denom))
              .c_str(),
          BM_EtaP, profile, 1.0 / denom)
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
