// Fig. 10: probabilistic where and when query time, UTCQ vs TED, on all
// three profiles at the default partitioning.
//
// Paper shape: UTCQ is faster on both query types — the temporal index
// lets it decode only the needed SIAR deltas (where), and Lemma 1's p_max
// gate skips whole reference groups (when); TED must fully decode every
// probability-qualified instance. The when-query gap depends on the
// probability distribution (smaller on DK), as the paper notes.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/utcq.h"
#include "ted/ted_index.h"
#include "ted/ted_query.h"

namespace {

using namespace utcq;          // NOLINT
using namespace utcq::bench;   // NOLINT

struct PointQuery {
  size_t traj;
  traj::Timestamp t;          // where
  network::EdgeId edge;       // when
  double rd;
  double alpha;
};

std::vector<PointQuery> MakeQueries(const Workload& w, size_t count) {
  common::Rng rng(99);
  std::vector<PointQuery> out;
  for (size_t i = 0; i < count; ++i) {
    const size_t j =
        static_cast<size_t>(rng.UniformInt(0, w.corpus.size() - 1));
    const auto& tu = w.corpus[j];
    const auto& inst = tu.instances[static_cast<size_t>(
        rng.UniformInt(0, tu.instances.size() - 1))];
    const auto& loc = inst.locations[static_cast<size_t>(
        rng.UniformInt(0, inst.locations.size() - 1))];
    out.push_back({j,
                   tu.times.front() + rng.UniformInt(
                       0, std::max<int64_t>(
                              tu.times.back() - tu.times.front(), 1)),
                   inst.path[loc.path_index], loc.rd,
                   rng.Uniform(0.05, 0.6)});
  }
  return out;
}

void BM_Queries(benchmark::State& state, traj::DatasetProfile profile,
                bool use_utcq, bool where_query) {
  const auto w = MakeWorkload(profile, TrajectoryCount(300));
  const auto queries = MakeQueries(*w, 300);

  core::UtcqParams uparams;
  uparams.default_interval_s = profile.default_interval_s;
  uparams.eta_p = profile.eta_p;
  const network::GridIndex grid(w->net, 32);
  std::unique_ptr<core::UtcqSystem> utcq_sys;
  std::unique_ptr<ted::TedCompressed> ted_cc;
  std::unique_ptr<ted::TedIndex> ted_index;
  std::unique_ptr<ted::TedQueryProcessor> ted_q;
  if (use_utcq) {
    utcq_sys = std::make_unique<core::UtcqSystem>(w->net, grid, w->corpus,
                                                  uparams,
                                                  core::StiuParams{32, 1800});
  } else {
    ted::TedParams tparams;
    tparams.eta_p = profile.eta_p;
    ted_cc = std::make_unique<ted::TedCompressed>(
        ted::TedCompressor(w->net, tparams).Compress(w->corpus));
    ted_index =
        std::make_unique<ted::TedIndex>(w->net, grid, *ted_cc, 1800);
    ted_q = std::make_unique<ted::TedQueryProcessor>(w->net, *ted_cc,
                                                     *ted_index);
  }

  size_t hits = 0;
  for (auto _ : state) {
    hits = 0;
    for (const auto& q : queries) {
      if (use_utcq) {
        hits += where_query
                    ? utcq_sys->queries().Where(q.traj, q.t, q.alpha).size()
                    : utcq_sys->queries()
                          .When(q.traj, q.edge, q.rd, q.alpha)
                          .size();
      } else {
        hits += where_query
                    ? ted_q->Where(q.traj, q.t, q.alpha).size()
                    : ted_q->When(q.traj, q.edge, q.rd, q.alpha).size();
      }
    }
    benchmark::DoNotOptimize(hits);
  }
  state.counters["hits"] = static_cast<double>(hits);
  state.counters["queries_per_s"] = benchmark::Counter(
      static_cast<double>(queries.size()),
      benchmark::Counter::kIsIterationInvariantRate);
}

}  // namespace

int main(int argc, char** argv) {
  for (const auto& profile : utcq::traj::AllProfiles()) {
    for (const bool where_query : {true, false}) {
      const std::string kind = where_query ? "where" : "when";
      benchmark::RegisterBenchmark(
          ("Fig10/" + kind + "/UTCQ/" + profile.name).c_str(), BM_Queries,
          profile, true, where_query)
          ->Unit(benchmark::kMillisecond);
      benchmark::RegisterBenchmark(
          ("Fig10/" + kind + "/TED/" + profile.name).c_str(), BM_Queries,
          profile, false, where_query)
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
