// Fig. 7: effect of trajectory length (20%..100% of the points kept, over
// long trajectories) on compression ratio and time.
//
// Paper shape: UTCQ's ratio first rises slightly (T compresses better on
// long sequences) then drops (longer sequences are less similar, weakening
// referential factors); TED's ratio decreases slightly; both times grow.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/encoder.h"
#include "core/utcq.h"
#include "ted/ted_compress.h"

namespace {

using namespace utcq;          // NOLINT
using namespace utcq::bench;   // NOLINT

std::unique_ptr<Workload> LongWorkload(traj::DatasetProfile profile) {
  profile.min_edges = 24;  // the paper keeps trajectories with >= 20 edges
  profile.mean_edges = 40;
  return MakeWorkload(profile, TrajectoryCount(150), 2024, 32);
}

template <typename Compressor, typename Params>
core::CompressionReport RunOnce(const network::RoadNetwork& net,
                                const traj::UncertainCorpus& corpus,
                                const Params& params) {
  const auto raw = traj::MeasureRawSize(net, corpus);
  common::Stopwatch watch;
  Compressor comp(net, params);
  const auto cc = comp.Compress(corpus);
  return core::MakeReport(raw, cc.compressed_bits(), watch.ElapsedSeconds(),
                          cc.peak_memory_bytes());
}

void BM_Utcq(benchmark::State& state, traj::DatasetProfile profile,
             int percent) {
  const auto w = LongWorkload(profile);
  const auto corpus = TruncateLengthFraction(w->corpus, percent / 100.0);
  core::UtcqParams params;
  params.default_interval_s = profile.default_interval_s;
  params.eta_p = profile.eta_p;
  core::CompressionReport report;
  for (auto _ : state) {
    report = RunOnce<core::UtcqCompressor>(w->net, corpus, params);
  }
  state.counters["CR"] = report.total;
  state.counters["compress_s"] = report.seconds;
  state.counters["peak_mem_KiB"] = report.peak_memory_bytes / 1024.0;
}

void BM_Ted(benchmark::State& state, traj::DatasetProfile profile,
            int percent) {
  const auto w = LongWorkload(profile);
  const auto corpus = TruncateLengthFraction(w->corpus, percent / 100.0);
  ted::TedParams params;
  params.eta_p = profile.eta_p;
  core::CompressionReport report;
  for (auto _ : state) {
    report = RunOnce<ted::TedCompressor>(w->net, corpus, params);
  }
  state.counters["CR"] = report.total;
  state.counters["compress_s"] = report.seconds;
  state.counters["peak_mem_KiB"] = report.peak_memory_bytes / 1024.0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto profiles = utcq::traj::AllProfiles();
  for (const auto& profile : {profiles[1], profiles[2]}) {  // CD, HZ (paper)
    for (const int percent : {20, 40, 60, 80, 100}) {
      benchmark::RegisterBenchmark(
          ("Fig7/UTCQ/" + profile.name + "/length_pct:" +
           std::to_string(percent))
              .c_str(),
          BM_Utcq, profile, percent)
          ->Unit(benchmark::kMillisecond);
      benchmark::RegisterBenchmark(
          ("Fig7/TED/" + profile.name + "/length_pct:" +
           std::to_string(percent))
              .c_str(),
          BM_Ted, profile, percent)
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
