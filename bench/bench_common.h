#ifndef UTCQ_BENCH_BENCH_COMMON_H_
#define UTCQ_BENCH_BENCH_COMMON_H_

#include <cstdlib>
#include <memory>
#include <string>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "network/generator.h"
#include "network/grid_index.h"
#include "traj/generator.h"
#include "traj/profiles.h"
#include "traj/statistics.h"
#include "traj/types.h"

namespace utcq::bench {

/// A generated experiment input: network + NCUT corpus for one profile.
struct Workload {
  traj::DatasetProfile profile;
  network::RoadNetwork net;
  traj::UncertainCorpus corpus;
};

/// Scale knob: UTCQ_BENCH_TRAJ overrides the per-profile trajectory count
/// so the full suite can be run at laptop or server scale.
inline size_t TrajectoryCount(size_t default_count) {
  if (const char* env = std::getenv("UTCQ_BENCH_TRAJ")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return default_count;
}

/// Deterministic workload for a profile. The same (profile, seed, count)
/// triple always produces the same corpus, so figures are reproducible.
inline std::unique_ptr<Workload> MakeWorkload(
    const traj::DatasetProfile& profile, size_t trajectories,
    uint64_t seed = 2024, uint32_t grid_rows = 24) {
  auto w = std::make_unique<Workload>();
  w->profile = profile;
  common::Rng net_rng(100);
  network::CityParams city = profile.city;
  city.rows = grid_rows;
  city.cols = grid_rows;
  w->net = network::GenerateCity(net_rng, city);
  traj::UncertainTrajectoryGenerator gen(w->net, profile, seed);
  w->corpus = gen.GenerateCorpus(trajectories);
  return w;
}

/// Keeps the first ceil(frac * N) instances of every trajectory and
/// renormalizes probabilities (Fig. 6's "number of instances" sweep).
inline traj::UncertainCorpus KeepInstanceFraction(
    const traj::UncertainCorpus& corpus, double frac) {
  traj::UncertainCorpus out = corpus;
  for (auto& tu : out) {
    const size_t keep = std::max<size_t>(
        1, static_cast<size_t>(frac * static_cast<double>(tu.instances.size()) +
                               0.999));
    if (keep < tu.instances.size()) tu.instances.resize(keep);
    double total = 0.0;
    for (const auto& inst : tu.instances) total += inst.probability;
    for (auto& inst : tu.instances) inst.probability /= total;
  }
  return out;
}

/// Keeps the first ceil(frac * n) mapped locations of every trajectory,
/// cutting each instance's path after the last kept location (Fig. 7's
/// "trajectory length" sweep). Shared timestamps truncate identically.
inline traj::UncertainCorpus TruncateLengthFraction(
    const traj::UncertainCorpus& corpus, double frac) {
  traj::UncertainCorpus out;
  out.reserve(corpus.size());
  for (const auto& tu : corpus) {
    traj::UncertainTrajectory cut;
    cut.id = tu.id;
    const size_t keep = std::max<size_t>(
        2, static_cast<size_t>(frac * static_cast<double>(tu.times.size()) +
                               0.999));
    if (keep >= tu.times.size()) {
      out.push_back(tu);
      continue;
    }
    cut.times.assign(tu.times.begin(), tu.times.begin() + keep);
    for (const auto& inst : tu.instances) {
      traj::TrajectoryInstance ci;
      ci.probability = inst.probability;
      ci.locations.assign(inst.locations.begin(),
                          inst.locations.begin() + keep);
      const uint32_t last_edge = ci.locations.back().path_index;
      ci.path.assign(inst.path.begin(), inst.path.begin() + last_edge + 1);
      cut.instances.push_back(std::move(ci));
    }
    out.push_back(std::move(cut));
  }
  return out;
}

}  // namespace utcq::bench

#endif  // UTCQ_BENCH_BENCH_COMMON_H_
