// Ablations of the design choices DESIGN.md §5 calls out (not a paper
// figure; supports the analysis of where UTCQ's gains come from):
//
//  * referential representation ON vs OFF (every instance standalone):
//    isolates the reference-selection machinery from improved-TED + SIAR;
//  * SIAR + improved Exp-Golomb vs TED's (i, t) anchor pairs on the same
//    shared time sequences;
//  * TED's T' bitmap compression (WAH [33]), which the paper's adapted
//    baseline omits as "time consuming": measured here to justify that.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/exp_golomb.h"
#include "common/wah_bitmap.h"
#include "core/encoder.h"
#include "core/improved_ted.h"
#include "core/utcq.h"
#include "ted/ted_repr.h"

namespace {

using namespace utcq;          // NOLINT
using namespace utcq::bench;   // NOLINT

void BM_Referential(benchmark::State& state, traj::DatasetProfile profile,
                    bool enabled) {
  const auto w = MakeWorkload(profile, TrajectoryCount(300));
  const auto raw = traj::MeasureRawSize(w->net, w->corpus);
  core::UtcqParams params;
  params.default_interval_s = profile.default_interval_s;
  params.eta_p = profile.eta_p;
  params.disable_referential = !enabled;
  core::CompressionReport report;
  for (auto _ : state) {
    common::Stopwatch watch;
    core::UtcqCompressor comp(w->net, params);
    const auto cc = comp.Compress(w->corpus);
    report = core::MakeReport(raw, cc.compressed_bits(),
                              watch.ElapsedSeconds(), cc.peak_memory_bytes());
    benchmark::DoNotOptimize(cc.total_bits());
  }
  state.counters["CR_total"] = report.total;
  state.counters["CR_E"] = report.e;
  state.counters["CR_D"] = report.d;
  state.counters["CR_Tflag"] = report.tflag;
  state.counters["compress_s"] = report.seconds;
}

void BM_TimeCodings(benchmark::State& state, traj::DatasetProfile profile) {
  const auto w = MakeWorkload(profile, TrajectoryCount(300));
  uint64_t raw_bits = 0;
  uint64_t siar_bits = 0;
  uint64_t pairs_bits = 0;
  for (auto _ : state) {
    raw_bits = siar_bits = pairs_bits = 0;
    for (const auto& tu : w->corpus) {
      raw_bits += 32 * tu.times.size();
      siar_bits += 17;
      for (const int64_t d :
           core::SiarDeltas(tu.times, profile.default_interval_s)) {
        siar_bits += common::ImprovedExpGolombLength(d);
      }
      const auto pairs = ted::BuildTimePairs(tu.times);
      pairs_bits +=
          pairs.size() *
          (common::BitsFor(tu.times.size() - 1) + 17);
    }
    benchmark::DoNotOptimize(siar_bits);
  }
  state.counters["CR_SIAR"] =
      static_cast<double>(raw_bits) / static_cast<double>(siar_bits);
  state.counters["CR_pairs"] =
      static_cast<double>(raw_bits) / static_cast<double>(pairs_bits);
}

void BM_WahTflag(benchmark::State& state, traj::DatasetProfile profile) {
  // Would WAH have paid off on the time-flag bit-strings? (The paper's
  // baseline omits it; short mostly-1 strings make fill words rare.)
  const auto w = MakeWorkload(profile, TrajectoryCount(300));
  uint64_t raw_bits = 0;
  uint64_t wah_bits = 0;
  for (auto _ : state) {
    raw_bits = wah_bits = 0;
    for (const auto& tu : w->corpus) {
      for (const auto& inst : tu.instances) {
        const auto bits = traj::BuildTimeFlagBits(inst);
        raw_bits += bits.size();
        wah_bits += common::WahBitmap::Compress(bits).size_bits();
      }
    }
    benchmark::DoNotOptimize(wah_bits);
  }
  state.counters["CR_WAH"] =
      static_cast<double>(raw_bits) / static_cast<double>(wah_bits);
}

}  // namespace

int main(int argc, char** argv) {
  for (const auto& profile : utcq::traj::AllProfiles()) {
    benchmark::RegisterBenchmark(
        ("Ablation/referential_on/" + profile.name).c_str(), BM_Referential,
        profile, true)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("Ablation/referential_off/" + profile.name).c_str(), BM_Referential,
        profile, false)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("Ablation/time_codings/" + profile.name).c_str(), BM_TimeCodings,
        profile)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("Ablation/wah_tflag/" + profile.name).c_str(), BM_WahTflag, profile)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
