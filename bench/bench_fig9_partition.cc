// Fig. 9: effect of spatial grid granularity (8^2..128^2 cells) and time
// partition duration (10..60 min) on probabilistic range queries.
//
// Paper shape: finer spatial/temporal partitions -> larger index, faster
// queries; UTCQ's index is smaller than TED's (referential tuples instead
// of per-instance ones) and UTCQ answers faster (Lemma 2/3/4 pruning plus
// partial decompression).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/utcq.h"
#include "ted/ted_index.h"
#include "ted/ted_query.h"

namespace {

using namespace utcq;          // NOLINT
using namespace utcq::bench;   // NOLINT

struct RangeQuery {
  network::Rect re;
  traj::Timestamp tq;
  double alpha;
};

std::vector<RangeQuery> MakeRangeQueries(const Workload& w, size_t count) {
  common::Rng rng(77);
  const auto bbox = w.net.bounding_box();
  std::vector<RangeQuery> queries;
  for (size_t i = 0; i < count; ++i) {
    const auto& tu = w.corpus[static_cast<size_t>(
        rng.UniformInt(0, w.corpus.size() - 1))];
    const double cx = rng.Uniform(bbox.min_x, bbox.max_x);
    const double cy = rng.Uniform(bbox.min_y, bbox.max_y);
    const double half = rng.Uniform(150.0, 800.0);
    queries.push_back({{cx - half, cy - half, cx + half, cy + half},
                       tu.times[static_cast<size_t>(
                           rng.UniformInt(0, tu.times.size() - 1))],
                       rng.Uniform(0.1, 0.8)});
  }
  return queries;
}

void BM_UtcqRange(benchmark::State& state, traj::DatasetProfile profile,
                  uint32_t cells, int64_t partition_s) {
  const auto w = MakeWorkload(profile, TrajectoryCount(300));
  core::UtcqParams params;
  params.default_interval_s = profile.default_interval_s;
  params.eta_p = profile.eta_p;
  const network::GridIndex grid(w->net, cells);
  const core::UtcqSystem sys(w->net, grid, w->corpus, params,
                             {cells, partition_s});
  const auto queries = MakeRangeQueries(*w, 200);
  size_t results = 0;
  for (auto _ : state) {
    results = 0;
    for (const auto& q : queries) {
      results += sys.queries().Range(q.re, q.tq, q.alpha).size();
    }
    benchmark::DoNotOptimize(results);
  }
  state.counters["index_s_KiB"] = sys.index().spatial_size_bytes() / 1024.0;
  state.counters["index_t_KiB"] = sys.index().temporal_size_bytes() / 1024.0;
  state.counters["results"] = static_cast<double>(results);
  state.counters["queries_per_s"] = benchmark::Counter(
      static_cast<double>(queries.size()),
      benchmark::Counter::kIsIterationInvariantRate);
}

void BM_TedRange(benchmark::State& state, traj::DatasetProfile profile,
                 uint32_t cells, int64_t partition_s) {
  const auto w = MakeWorkload(profile, TrajectoryCount(300));
  ted::TedParams params;
  params.eta_p = profile.eta_p;
  const ted::TedCompressor comp(w->net, params);
  const auto cc = comp.Compress(w->corpus);
  const network::GridIndex grid(w->net, cells);
  const ted::TedIndex index(w->net, grid, cc, partition_s);
  const ted::TedQueryProcessor queries_proc(w->net, cc, index);
  const auto queries = MakeRangeQueries(*w, 200);
  size_t results = 0;
  for (auto _ : state) {
    results = 0;
    for (const auto& q : queries) {
      results += queries_proc.Range(q.re, q.tq, q.alpha).size();
    }
    benchmark::DoNotOptimize(results);
  }
  state.counters["index_KiB"] = index.SizeBytes() / 1024.0;
  state.counters["results"] = static_cast<double>(results);
  state.counters["queries_per_s"] = benchmark::Counter(
      static_cast<double>(queries.size()),
      benchmark::Counter::kIsIterationInvariantRate);
}

}  // namespace

int main(int argc, char** argv) {
  const auto profiles = utcq::traj::AllProfiles();
  // Fig. 9a/9b: sweep grid cells at the default 30-minute partition.
  for (const auto& profile : {profiles[0], profiles[2]}) {  // DK, HZ
    for (const uint32_t cells : {8u, 16u, 32u, 64u, 128u}) {
      benchmark::RegisterBenchmark(
          ("Fig9ab/UTCQ/" + profile.name + "/grid:" + std::to_string(cells))
              .c_str(),
          BM_UtcqRange, profile, cells, int64_t{1800})
          ->Unit(benchmark::kMillisecond);
      benchmark::RegisterBenchmark(
          ("Fig9ab/TED/" + profile.name + "/grid:" + std::to_string(cells))
              .c_str(),
          BM_TedRange, profile, cells, int64_t{1800})
          ->Unit(benchmark::kMillisecond);
    }
    // Fig. 9c/9d: sweep the time partition at the default 32^2 grid.
    for (const int minutes : {10, 20, 30, 40, 50, 60}) {
      benchmark::RegisterBenchmark(
          ("Fig9cd/UTCQ/" + profile.name + "/partition_min:" +
           std::to_string(minutes))
              .c_str(),
          BM_UtcqRange, profile, 32u, int64_t{minutes * 60})
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
