// Fig. 6: effect of the number of instances per uncertain trajectory on
// compression ratio, time and peak memory (60%..100% of instances kept,
// over trajectories with >= 20 instances).
//
// Paper shape: UTCQ's ratio improves slightly with more instances (more
// referential sharing) while TED's is flat; UTCQ is faster and 1-2 orders
// lighter on memory (TED materializes the corpus-wide code matrices).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/encoder.h"
#include "core/utcq.h"
#include "ted/ted_compress.h"

namespace {

using namespace utcq;          // NOLINT
using namespace utcq::bench;   // NOLINT

std::unique_ptr<Workload> ManyInstanceWorkload(traj::DatasetProfile profile) {
  // The paper filters trajectories with >= 20 instances; emulate by raising
  // the profile's instance mean/minimum.
  profile.min_instances = 20;
  profile.mean_instances = 28;
  profile.max_instances = 140;
  return MakeWorkload(profile, TrajectoryCount(120));
}

void BM_Utcq(benchmark::State& state, traj::DatasetProfile profile,
             int percent) {
  const auto w = ManyInstanceWorkload(profile);
  const auto corpus = KeepInstanceFraction(w->corpus, percent / 100.0);
  const auto raw = traj::MeasureRawSize(w->net, corpus);
  core::UtcqParams params;
  params.default_interval_s = profile.default_interval_s;
  params.eta_p = profile.eta_p;
  core::CompressionReport report;
  for (auto _ : state) {
    common::Stopwatch watch;
    core::UtcqCompressor comp(w->net, params);
    const auto cc = comp.Compress(corpus);
    report = core::MakeReport(raw, cc.compressed_bits(),
                              watch.ElapsedSeconds(), cc.peak_memory_bytes());
    benchmark::DoNotOptimize(cc.total_bits());
  }
  state.counters["CR"] = report.total;
  state.counters["compress_s"] = report.seconds;
  state.counters["peak_mem_KiB"] = report.peak_memory_bytes / 1024.0;
}

void BM_Ted(benchmark::State& state, traj::DatasetProfile profile,
            int percent) {
  const auto w = ManyInstanceWorkload(profile);
  const auto corpus = KeepInstanceFraction(w->corpus, percent / 100.0);
  const auto raw = traj::MeasureRawSize(w->net, corpus);
  ted::TedParams params;
  params.eta_p = profile.eta_p;
  core::CompressionReport report;
  for (auto _ : state) {
    common::Stopwatch watch;
    ted::TedCompressor comp(w->net, params);
    const auto cc = comp.Compress(corpus);
    report = core::MakeReport(raw, cc.compressed_bits(),
                              watch.ElapsedSeconds(), cc.peak_memory_bytes());
    benchmark::DoNotOptimize(cc.compressed_bits().total());
  }
  state.counters["CR"] = report.total;
  state.counters["compress_s"] = report.seconds;
  state.counters["peak_mem_KiB"] = report.peak_memory_bytes / 1024.0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto profiles = utcq::traj::AllProfiles();
  for (const auto& profile : {profiles[0], profiles[2]}) {  // DK, HZ (paper)
    for (const int percent : {60, 70, 80, 90, 100}) {
      benchmark::RegisterBenchmark(
          ("Fig6/UTCQ/" + profile.name + "/instances_pct:" +
           std::to_string(percent))
              .c_str(),
          BM_Utcq, profile, percent)
          ->Unit(benchmark::kMillisecond);
      benchmark::RegisterBenchmark(
          ("Fig6/TED/" + profile.name + "/instances_pct:" +
           std::to_string(percent))
              .c_str(),
          BM_Ted, profile, percent)
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
