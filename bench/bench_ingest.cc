// Streaming-ingestion benchmark: raw GPS points through the
// ingest::StreamingService — online matching throughput (points/sec), seal
// latency percentiles, flush cost, and live-vs-sealed query throughput
// through a tier-mode serve::QueryEngine.
//
// Emits BENCH_ingest.json, the baseline of the streaming tier, validated
// by scripts/validate_bench_json.py in CI next to BENCH_shard.json and
// BENCH_query.json. The equivalence gate runs first: live answers, sealed
// answers and the batch build of the same sealed trajectories must agree
// hit for hit before any throughput number means anything.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bench_metrics.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/encoder.h"
#include "core/query.h"
#include "obs/metrics.h"
#include "core/stiu_index.h"
#include "ingest/streaming_service.h"
#include "serve/query_engine.h"
#include "shard/sharded.h"

namespace {

using namespace utcq;         // NOLINT
using namespace utcq::bench;  // NOLINT

double SafeRate(double count, double seconds) {
  return seconds > 0.0 ? count / seconds : 0.0;
}

double SafeRatio(double num, double den) { return den > 0.0 ? num / den : 0.0; }

double Percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const size_t k = static_cast<size_t>(
      q * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[k];
}

struct QueryRun {
  std::string mode;
  double seconds = 0.0;
  double qps = 0.0;
  size_t queries = 0;
};

/// Mixed point+range workload over the sealed corpus, executed through the
/// engine; also used for the equivalence gate against the batch build.
struct WorkItem {
  uint32_t traj;
  traj::Timestamp t;
  network::EdgeId edge;
  network::Rect region;
};

}  // namespace

int main(int argc, char** argv) {
  const long requested = argc > 1 ? std::atol(argv[1]) : 0;
  if (argc > 1 && requested <= 0) {
    std::fprintf(stderr, "usage: %s [raw streams > 0]\n", argv[0]);
    return 2;
  }
  const size_t streams = argc > 1 ? static_cast<size_t>(requested)
                                  : TrajectoryCount(300);

  auto profile = traj::ChengduProfile();
  profile.gps_noise_m = 10.0;
  common::Rng net_rng(100);
  network::CityParams city = profile.city;
  city.rows = 20;
  city.cols = 20;
  const network::RoadNetwork net = network::GenerateCity(net_rng, city);
  const network::GridIndex grid(net, 24);
  traj::UncertainTrajectoryGenerator gen(net, profile, 7);

  std::vector<traj::RawTrajectory> raws;
  size_t points = 0;
  for (size_t i = 0; i < streams; ++i) {
    raws.push_back(gen.GenerateRaw().raw);
    points += raws.back().size();
  }

  // One registry for the whole streaming tier: its snapshot (ingest.*
  // counters, seal/flush histograms) becomes the baseline's metrics
  // object.
  obs::MetricRegistry metrics_registry;
  ingest::StreamingOptions opts;
  opts.registry = &metrics_registry;
  opts.match.match.gps_sigma_m = 15.0;
  opts.match.max_pending_steps = 32;
  opts.limits.max_points = 512;
  opts.params.default_interval_s = profile.default_interval_s;
  opts.index_params = core::StiuParams{24, 1800};

  const char* tmpdir = std::getenv("TMPDIR");
  const std::string manifest =
      std::string(tmpdir != nullptr ? tmpdir : "/tmp") + "/bench_ingest.utcq";
  std::remove(manifest.c_str());

  ingest::StreamingService service(net, grid, manifest, opts);
  std::string error;
  if (!service.Open(&error)) {
    std::fprintf(stderr, "open failed: %s\n", error.c_str());
    return 1;
  }

  // --- ingest: every point through the online matcher, round-robin over
  // the vehicles, sessions ended (and sealed) per vehicle with the seal
  // latency sampled on each end ---------------------------------------------
  common::Stopwatch watch;
  size_t cursor = 0;
  bool more = true;
  while (more) {
    more = false;
    for (size_t v = 0; v < raws.size(); ++v) {
      if (cursor < raws[v].size()) {
        service.Push(v, raws[v][cursor]);
        more = more || cursor + 1 < raws[v].size();
      }
    }
    ++cursor;
  }
  std::vector<double> seal_ms;
  seal_ms.reserve(raws.size());
  for (size_t v = 0; v < raws.size(); ++v) {
    common::Stopwatch seal_watch;
    service.EndSession(v);
    seal_ms.push_back(seal_watch.ElapsedMillis());
  }
  const double ingest_seconds = watch.ElapsedSeconds();
  const auto stats = service.stats();
  const double points_per_sec =
      SafeRate(static_cast<double>(points), ingest_seconds);
  std::printf(
      "ingested %zu points of %zu streams in %.3fs (%.0f points/s), "
      "sealed %llu trajectories\n",
      points, streams, ingest_seconds, points_per_sec,
      static_cast<unsigned long long>(stats.trajectories_sealed));
  const double seal_p50 = Percentile(seal_ms, 0.50);
  const double seal_p99 = Percentile(seal_ms, 0.99);
  std::printf("seal latency: p50 %.3f ms, p99 %.3f ms\n", seal_p50, seal_p99);

  // --- batch ground truth over the sealed trajectories ---------------------
  const traj::UncertainCorpus corpus = service.LiveTrajectories();
  if (corpus.size() < 2) {
    std::fprintf(stderr, "too few matched trajectories (%zu)\n",
                 corpus.size());
    return 1;
  }
  const core::UtcqCompressor compressor(net, opts.params);
  std::vector<std::vector<core::NrefFactorLayout>> layouts;
  const core::CompressedCorpus batch_cc = compressor.Compress(corpus, &layouts);
  core::StiuParams iparams = opts.index_params;
  iparams.cells_per_side = grid.cells_per_side();
  const core::StiuIndex batch_index(net, grid, corpus, batch_cc.view(),
                                    layouts, iparams);
  const core::UtcqQueryProcessor batch(net, batch_cc.view(), batch_index);

  const double alpha = 0.3;
  const auto bbox = net.bounding_box();
  common::Rng rng(17);
  std::vector<WorkItem> work;
  for (size_t i = 0; i < 512; ++i) {
    const auto j = static_cast<uint32_t>(rng.UniformInt(0, corpus.size() - 1));
    const auto& tu = corpus[j];
    const auto& path = tu.instances.front().path;
    const double cx = rng.Uniform(bbox.min_x, bbox.max_x);
    const double cy = rng.Uniform(bbox.min_y, bbox.max_y);
    work.push_back(
        {j, rng.UniformInt(tu.times.front(), tu.times.back()),
         path[static_cast<size_t>(rng.UniformInt(0, path.size() - 1))],
         {cx - 500, cy - 500, cx + 500, cy + 500}});
  }

  // --- equivalence gate: live == batch ------------------------------------
  size_t mismatches = 0;
  {
    serve::QueryEngine gate(service);
    for (size_t i = 0; i < std::min<size_t>(work.size(), 64); ++i) {
      const WorkItem& q = work[i];
      if (gate.Where(q.traj, q.t, alpha) != batch.Where(q.traj, q.t, alpha)) {
        ++mismatches;
      }
      if (gate.When(q.traj, q.edge, 0.5, alpha) !=
          batch.When(q.traj, q.edge, 0.5, alpha)) {
        ++mismatches;
      }
      if (gate.Range(q.region, q.t, alpha) !=
          batch.Range(q.region, q.t, alpha)) {
        ++mismatches;
      }
    }
  }

  // --- live vs sealed query throughput ------------------------------------
  const auto run_queries = [&](const std::string& mode) {
    QueryRun run;
    run.mode = mode;
    serve::QueryEngine engine(service);
    common::Stopwatch qwatch;
    for (const WorkItem& q : work) {
      engine.Where(q.traj, q.t, alpha);
      engine.When(q.traj, q.edge, 0.5, alpha);
      engine.Range(q.region, q.t, alpha);
    }
    run.seconds = qwatch.ElapsedSeconds();
    run.queries = 3 * work.size();
    run.qps = SafeRate(static_cast<double>(run.queries), run.seconds);
    std::printf("%s: %zu queries in %.3fs (%.0f qps)\n", mode.c_str(),
                run.queries, run.seconds, run.qps);
    return run;
  };

  std::vector<QueryRun> query_runs;
  query_runs.push_back(run_queries("live"));

  watch.Restart();
  if (!service.Flush(&error)) {
    std::fprintf(stderr, "flush failed: %s\n", error.c_str());
    return 1;
  }
  const double flush_seconds = watch.ElapsedSeconds();
  std::printf("flushed %zu trajectories in %.3fs\n", corpus.size(),
              flush_seconds);

  query_runs.push_back(run_queries("sealed"));

  // Sealed answers must agree with batch too (same gate, post-flush).
  {
    serve::QueryEngine gate(service);
    for (size_t i = 0; i < std::min<size_t>(work.size(), 64); ++i) {
      const WorkItem& q = work[i];
      if (gate.Where(q.traj, q.t, alpha) != batch.Where(q.traj, q.t, alpha)) {
        ++mismatches;
      }
    }
  }
  std::printf("equivalence: %zu mismatches (expected 0)\n", mismatches);

  const double sealed_over_live =
      SafeRatio(query_runs[1].qps, query_runs[0].qps);

  std::FILE* json = std::fopen("BENCH_ingest.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_ingest.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"ingest\",\n");
  std::fprintf(json, "  \"raw_streams\": %zu,\n", streams);
  std::fprintf(json, "  \"points\": %zu,\n", points);
  std::fprintf(json, "  \"matched_trajectories\": %zu,\n", corpus.size());
  std::fprintf(json, "  \"threads_available\": %u,\n",
               common::DefaultThreads());
  std::fprintf(json, "  \"equivalence_mismatches\": %zu,\n", mismatches);
  std::fprintf(json, "  \"ingest_seconds\": %.6f,\n", ingest_seconds);
  std::fprintf(json, "  \"points_per_sec\": %.3f,\n", points_per_sec);
  std::fprintf(json, "  \"seal_p50_ms\": %.4f,\n", seal_p50);
  std::fprintf(json, "  \"seal_p99_ms\": %.4f,\n", seal_p99);
  std::fprintf(json, "  \"flush_seconds\": %.6f,\n", flush_seconds);
  std::fprintf(json, "  \"sealed_over_live\": %.4f,\n", sealed_over_live);
  std::fprintf(json, "  \"query_runs\": [\n");
  for (size_t i = 0; i < query_runs.size(); ++i) {
    const QueryRun& r = query_runs[i];
    std::fprintf(json,
                 "    {\"mode\": \"%s\", \"seconds\": %.6f, \"qps\": %.3f, "
                 "\"queries\": %zu}%s\n",
                 r.mode.c_str(), r.seconds, r.qps, r.queries,
                 i + 1 < query_runs.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  AppendMetricsJson(json, metrics_registry.Snapshot());
  std::fprintf(json, "\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_ingest.json\n");

  for (uint32_t g = 0; g < service.num_generations(); ++g) {
    std::remove(shard::ShardArchivePath(manifest, g).c_str());
  }
  std::remove(manifest.c_str());
  return mismatches == 0 ? 0 : 1;
}
