// Fig. 12: scalability with data size (20%..100% of the corpus).
//
// Paper shape: compression ratios are roughly independent of corpus size;
// UTCQ's compression time grows linearly (trajectories are processed one
// by one) while TED's grows super-linearly (corpus-wide grouping and
// matrix packing); range query times grow linearly for both with UTCQ
// ahead.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/utcq.h"
#include "ted/ted_index.h"
#include "ted/ted_query.h"

namespace {

using namespace utcq;          // NOLINT
using namespace utcq::bench;   // NOLINT

traj::UncertainCorpus Slice(const traj::UncertainCorpus& corpus,
                            int percent) {
  const size_t keep = std::max<size_t>(
      1, corpus.size() * static_cast<size_t>(percent) / 100);
  return traj::UncertainCorpus(corpus.begin(),
                               corpus.begin() + static_cast<long>(keep));
}

void BM_Compress(benchmark::State& state, traj::DatasetProfile profile,
                 bool use_utcq, int percent) {
  const auto w = MakeWorkload(profile, TrajectoryCount(600));
  const auto corpus = Slice(w->corpus, percent);
  const auto raw = traj::MeasureRawSize(w->net, corpus);
  double cr = 0.0;
  for (auto _ : state) {
    if (use_utcq) {
      core::UtcqParams params;
      params.default_interval_s = profile.default_interval_s;
      params.eta_p = profile.eta_p;
      core::UtcqCompressor comp(w->net, params);
      const auto cc = comp.Compress(corpus);
      cr = static_cast<double>(raw.total()) /
           static_cast<double>(cc.compressed_bits().total());
    } else {
      ted::TedParams params;
      params.eta_p = profile.eta_p;
      ted::TedCompressor comp(w->net, params);
      const auto cc = comp.Compress(corpus);
      cr = static_cast<double>(raw.total()) /
           static_cast<double>(cc.compressed_bits().total());
    }
    benchmark::DoNotOptimize(cr);
  }
  state.counters["CR"] = cr;
  state.counters["trajectories"] = static_cast<double>(corpus.size());
}

void BM_RangeQueries(benchmark::State& state, traj::DatasetProfile profile,
                     bool use_utcq, int percent) {
  const auto w = MakeWorkload(profile, TrajectoryCount(600));
  const auto corpus = Slice(w->corpus, percent);
  const network::GridIndex grid(w->net, 32);

  common::Rng rng(7);
  const auto bbox = w->net.bounding_box();
  struct Q {
    network::Rect re;
    traj::Timestamp tq;
  };
  std::vector<Q> queries;
  for (int i = 0; i < 150; ++i) {
    const double cx = rng.Uniform(bbox.min_x, bbox.max_x);
    const double cy = rng.Uniform(bbox.min_y, bbox.max_y);
    const double half = rng.Uniform(150.0, 700.0);
    queries.push_back({{cx - half, cy - half, cx + half, cy + half},
                       rng.UniformInt(0, traj::kSecondsPerDay - 1)});
  }

  size_t results = 0;
  if (use_utcq) {
    core::UtcqParams params;
    params.default_interval_s = profile.default_interval_s;
    params.eta_p = profile.eta_p;
    const core::UtcqSystem sys(w->net, grid, corpus, params, {32, 1800});
    for (auto _ : state) {
      results = 0;
      for (const auto& q : queries) {
        results += sys.queries().Range(q.re, q.tq, 0.5).size();
      }
      benchmark::DoNotOptimize(results);
    }
  } else {
    ted::TedParams params;
    params.eta_p = profile.eta_p;
    const auto cc = ted::TedCompressor(w->net, params).Compress(corpus);
    const ted::TedIndex index(w->net, grid, cc, 1800);
    const ted::TedQueryProcessor proc(w->net, cc, index);
    for (auto _ : state) {
      results = 0;
      for (const auto& q : queries) {
        results += proc.Range(q.re, q.tq, 0.5).size();
      }
      benchmark::DoNotOptimize(results);
    }
  }
  state.counters["results"] = static_cast<double>(results);
  state.counters["queries_per_s"] = benchmark::Counter(
      static_cast<double>(queries.size()),
      benchmark::Counter::kIsIterationInvariantRate);
}

}  // namespace

int main(int argc, char** argv) {
  const auto profiles = utcq::traj::AllProfiles();
  for (const auto& profile : {profiles[1], profiles[2]}) {  // CD, HZ (paper)
    for (const int percent : {20, 40, 60, 80, 100}) {
      benchmark::RegisterBenchmark(
          ("Fig12ab/UTCQ/" + profile.name + "/data_pct:" +
           std::to_string(percent))
              .c_str(),
          BM_Compress, profile, true, percent)
          ->Unit(benchmark::kMillisecond);
      benchmark::RegisterBenchmark(
          ("Fig12ab/TED/" + profile.name + "/data_pct:" +
           std::to_string(percent))
              .c_str(),
          BM_Compress, profile, false, percent)
          ->Unit(benchmark::kMillisecond);
      benchmark::RegisterBenchmark(
          ("Fig12cd/UTCQ/" + profile.name + "/data_pct:" +
           std::to_string(percent))
              .c_str(),
          BM_RangeQueries, profile, true, percent)
          ->Unit(benchmark::kMillisecond);
      benchmark::RegisterBenchmark(
          ("Fig12cd/TED/" + profile.name + "/data_pct:" +
           std::to_string(percent))
              .c_str(),
          BM_RangeQueries, profile, false, percent)
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
