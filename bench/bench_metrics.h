#ifndef UTCQ_BENCH_BENCH_METRICS_H_
#define UTCQ_BENCH_BENCH_METRICS_H_

// Embeds an obs::RegistrySnapshot into a BENCH_*.json baseline as a
// `"metrics"` object — counters and gauges verbatim, histograms reduced
// to {count, sum, p50, p90, p99, p999}. The baselines thereby carry the
// observability evidence of the run (cache traffic, decode bytes, pool
// activity) next to the wall-clock numbers, and
// scripts/validate_bench_json.py cross-checks the two.

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>

#include "obs/metrics.h"

namespace utcq::bench {

/// Appends `  "metrics": {...}` (no trailing comma or newline) to `f`.
/// The caller is mid-object: emit a comma after the previous key, call
/// this, then close the object.
inline void AppendMetricsJson(std::FILE* f,
                              const obs::RegistrySnapshot& snap) {
  std::fprintf(f, "  \"metrics\": {\n");
  std::fprintf(f, "    \"counters\": {");
  for (size_t i = 0; i < snap.counters.size(); ++i) {
    std::fprintf(f, "%s\n      \"%s\": %llu", i == 0 ? "" : ",",
                 snap.counters[i].first.c_str(),
                 static_cast<unsigned long long>(snap.counters[i].second));
  }
  std::fprintf(f, "%s},\n", snap.counters.empty() ? "" : "\n    ");
  std::fprintf(f, "    \"gauges\": {");
  for (size_t i = 0; i < snap.gauges.size(); ++i) {
    std::fprintf(f, "%s\n      \"%s\": %lld", i == 0 ? "" : ",",
                 snap.gauges[i].first.c_str(),
                 static_cast<long long>(snap.gauges[i].second));
  }
  std::fprintf(f, "%s},\n", snap.gauges.empty() ? "" : "\n    ");
  std::fprintf(f, "    \"histograms\": {");
  for (size_t i = 0; i < snap.histograms.size(); ++i) {
    const obs::HistogramSnapshot& h = snap.histograms[i].second;
    std::fprintf(f,
                 "%s\n      \"%s\": {\"count\": %llu, \"sum\": %llu, "
                 "\"p50\": %.1f, \"p90\": %.1f, \"p99\": %.1f, "
                 "\"p999\": %.1f}",
                 i == 0 ? "" : ",", snap.histograms[i].first.c_str(),
                 static_cast<unsigned long long>(h.count),
                 static_cast<unsigned long long>(h.sum), h.p50(), h.p90(),
                 h.p99(), h.p999());
  }
  std::fprintf(f, "%s}\n", snap.histograms.empty() ? "" : "\n    ");
  std::fprintf(f, "  }");
}

}  // namespace utcq::bench

#endif  // UTCQ_BENCH_BENCH_METRICS_H_
