// Decode-kernel benchmark: full-trajectory decode throughput and cold
// query throughput under every supported strategy tier, measured against
// the kBitloop reference — the pre-optimization bit-at-a-time loops kept
// precisely so the SIMD speedup claim has an honest baseline.
//
// Emits BENCH_decode.json (machine-readable, one object). The equivalence
// gate decompresses the whole corpus under every tier and counts
// mismatches against the bitloop result; a nonzero count fails the run —
// a fast kernel that decodes different bits is a bug, not a speedup.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bench_metrics.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/utcq.h"
#include "obs/metrics.h"
#include "strategies/strategies.h"

namespace {

using namespace utcq;         // NOLINT
using namespace utcq::bench;  // NOLINT

double SafeRate(double count, double seconds) {
  return seconds > 0.0 ? count / seconds : 0.0;
}

struct TierRun {
  const char* name = nullptr;
  double decode_seconds = 0.0;
  double decode_mbps = 0.0;
  double qps = 0.0;
  double speedup_vs_bitloop = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const long requested = argc > 1 ? std::atol(argv[1]) : 0;
  if (argc > 1 && requested <= 0) {
    std::fprintf(stderr, "usage: %s [trajectories > 0]\n", argv[0]);
    return 2;
  }
  const size_t trajectories = argc > 1 ? static_cast<size_t>(requested)
                                       : TrajectoryCount(600);
  const auto w = MakeWorkload(traj::ChengduProfile(), trajectories);
  const network::GridIndex grid(w->net, 32);

  core::UtcqParams params;
  params.default_interval_s = w->profile.default_interval_s;
  params.eta_p = w->profile.eta_p;
  const core::UtcqSystem sys(w->net, grid, w->corpus, params,
                             core::StiuParams{32, 1800});
  const core::UtcqDecoder decoder = sys.decoder();
  const double payload_bytes =
      static_cast<double>(sys.compressed().total_bits()) / 8.0;
  const size_t n = sys.compressed().num_trajectories();

  // Cold-query workload: one answerable Where per trajectory (mid time).
  struct Point {
    uint32_t traj;
    traj::Timestamp t;
  };
  std::vector<Point> points;
  const size_t distinct = std::min<size_t>(n, 400);
  for (uint32_t j = 0; j < distinct; ++j) {
    const auto& tu = w->corpus[j];
    points.push_back({j, (tu.times.front() + tu.times.back()) / 2});
  }
  const double alpha = 0.3;

  // The tier list: bitloop first (it is the baseline every speedup divides
  // by), then every supported optimized tier in ascending order.
  std::vector<strategies::Tier> tiers = {strategies::Tier::kBitloop};
  for (const strategies::Tier t :
       {strategies::Tier::kScalar, strategies::Tier::kSse42,
        strategies::Tier::kAvx2}) {
    if (strategies::TierSupported(t)) tiers.push_back(t);
  }

  // --- equivalence gate: every tier must decode the identical corpus ------
  size_t mismatches = 0;
  strategies::SetActive(strategies::Tier::kBitloop);
  const traj::UncertainCorpus want = decoder.DecompressAll();
  for (size_t ti = 1; ti < tiers.size(); ++ti) {
    strategies::SetActive(tiers[ti]);
    const traj::UncertainCorpus got = decoder.DecompressAll();
    for (size_t j = 0; j < n; ++j) {
      if (got[j].times != want[j].times ||
          got[j].instances != want[j].instances) {
        ++mismatches;
      }
    }
  }
  std::printf("equivalence: %zu mismatches across %zu tiers (expected 0)\n",
              mismatches, tiers.size() - 1);

  // --- per-tier decode + query throughput ---------------------------------
  // Repetitions target a fixed decoded volume (~200k trajectory decodes)
  // regardless of corpus size: per-rep time on these corpora is a few
  // milliseconds, far too short a window for a stable speedup ratio.
  const int reps =
      std::max(8, static_cast<int>(200000 / std::max<size_t>(n, 1)));
  std::vector<TierRun> runs;
  common::Stopwatch watch;
  uint64_t sink = 0;  // defeats dead-code elimination of the decode loops
  for (const strategies::Tier tier : tiers) {
    strategies::SetActive(tier);
    TierRun run;
    run.name = strategies::TierName(tier);

    // The timed loop is the bitstream decode of the whole payload: shared
    // times, every reference, every non-reference expanded against its
    // decoded reference — everything the compressed bits encode, through
    // the same entry points DecodeTraj uses, but without ToInstance's
    // network-walk reconstruction (which never touches the bitstream and
    // would dilute a kernel measurement with graph traversal).
    // Scratch buffers live outside the loop (the ...Into decode entry
    // points reuse their capacity), so after the first pass the timed
    // region is bitstream work, not one allocator round-trip per instance.
    std::vector<traj::Timestamp> times;
    std::vector<core::DecodedInstance> refs;
    core::DecodedInstance scratch;
    const auto decode_payload = [&](size_t j) {
      const auto& meta = decoder.view().meta(j);
      decoder.DecodeTimesInto(j, &times);
      sink += times.size();
      if (refs.size() < meta.refs.size()) refs.resize(meta.refs.size());
      for (uint32_t ri = 0; ri < meta.refs.size(); ++ri) {
        decoder.DecodeReferenceInto(j, ri, &refs[ri]);
        sink += refs[ri].entries.size();
      }
      for (uint32_t k = 0; k < meta.nrefs.size(); ++k) {
        decoder.DecodeNonReferenceInto(j, k, refs[meta.nrefs[k].ref_pos],
                                       &scratch);
        sink += scratch.rds.size();
      }
    };
    for (size_t j = 0; j < std::min<size_t>(n, 16); ++j) {
      decode_payload(j);  // warm-up
    }
    watch.Restart();
    for (int rep = 0; rep < reps; ++rep) {
      for (size_t j = 0; j < n; ++j) decode_payload(j);
    }
    run.decode_seconds = watch.ElapsedSeconds();
    run.decode_mbps = SafeRate(payload_bytes * reps / (1024.0 * 1024.0),
                               run.decode_seconds);

    watch.Restart();
    for (const Point& p : points) {
      sink += sys.queries().Where(p.traj, p.t, alpha).size();
    }
    run.qps = SafeRate(static_cast<double>(points.size()),
                       watch.ElapsedSeconds());

    runs.push_back(run);
    std::printf("%-8s decode %.3fs (%.2f MiB/s), where %.0f qps\n", run.name,
                run.decode_seconds, run.decode_mbps, run.qps);
  }
  strategies::SetActive(strategies::BestSupportedTier());

  const double bitloop_mbps = runs.front().decode_mbps;
  const TierRun* best = &runs.front();
  for (TierRun& run : runs) {
    run.speedup_vs_bitloop =
        bitloop_mbps > 0.0 ? run.decode_mbps / bitloop_mbps : 0.0;
    if (run.decode_mbps > best->decode_mbps) best = &run;
  }
  std::printf("best tier %s: %.2fx vs bitloop (sink %llu)\n", best->name,
              best->speedup_vs_bitloop,
              static_cast<unsigned long long>(sink));

  std::FILE* json = std::fopen("BENCH_decode.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_decode.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"decode\",\n");
  std::fprintf(json, "  \"trajectories\": %zu,\n", n);
  std::fprintf(json, "  \"decode_reps\": %d,\n", reps);
  std::fprintf(json, "  \"payload_bytes\": %.0f,\n", payload_bytes);
  std::fprintf(json, "  \"threads_available\": %u,\n",
               common::DefaultThreads());
  std::fprintf(json, "  \"threads_effective\": %u,\n",
               common::EffectiveThreads(n, 0));
  std::fprintf(json, "  \"equivalence_mismatches\": %zu,\n", mismatches);
  std::fprintf(json, "  \"best_tier\": \"%s\",\n", best->name);
  std::fprintf(json, "  \"best_speedup_vs_bitloop\": %.3f,\n",
               best->speedup_vs_bitloop);
  std::fprintf(json, "  \"tiers\": [\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    const TierRun& r = runs[i];
    std::fprintf(json,
                 "    {\"tier\": \"%s\", \"decode_seconds\": %.6f, "
                 "\"decode_mbps\": %.3f, \"qps\": %.3f, "
                 "\"speedup_vs_bitloop\": %.3f}%s\n",
                 r.name, r.decode_seconds, r.decode_mbps, r.qps,
                 r.speedup_vs_bitloop, i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  AppendMetricsJson(json, obs::MetricRegistry::Global().Snapshot());
  std::fprintf(json, "\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_decode.json\n");
  return mismatches == 0 ? 0 : 1;
}
