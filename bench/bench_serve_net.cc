// Network-serving benchmark: the TCP tier (DESIGN.md §14) measured
// end-to-end over loopback — per-request latency for a closed-loop client,
// pipelining leverage (one burst folding into ExecuteBatch vs one
// round-trip per query), concurrent-connection scaling, and an open-loop
// arrival sweep that pushes past saturation to expose the p50/p99/p999
// tail under overload.
//
// Emits BENCH_net.json (machine-readable, one object) — the recorded
// baseline for the serving tier's wire path, the counterpart of
// BENCH_query.json for the in-process engine. Every division is guarded
// (SafeRate/SafeRatio) so a sub-resolution timer produces 0, never
// NaN/inf, and the JSON stays schema-valid for CI.
//
// Usage: bench_serve_net [trajectories > 0] [queries-per-run > 0]
// Defaults: 400 trajectories (UTCQ_BENCH_TRAJ respected), 2000 queries.
// bench-smoke runs it as `bench_serve_net 60 200`.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bench_metrics.h"
#include "common/stopwatch.h"
#include "core/utcq.h"
#include "net/client.h"
#include "net/tcp_server.h"
#include "obs/metrics.h"
#include "serve/query_engine.h"

namespace {

using namespace utcq;         // NOLINT
using namespace utcq::bench;  // NOLINT

double SafeRate(double count, double seconds) {
  return seconds > 0.0 ? count / seconds : 0.0;
}

double SafeRatio(double num, double den) { return den > 0.0 ? num / den : 0.0; }

/// Percentile over a latency sample (microseconds). Sorts a copy; fine at
/// benchmark sizes.
double PercentileUs(std::vector<double> sample, double p) {
  if (sample.empty()) return 0.0;
  std::sort(sample.begin(), sample.end());
  const double rank = p * static_cast<double>(sample.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sample.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sample[lo] + frac * (sample[hi] - sample[lo]);
}

struct OpenLoopRun {
  double offered_qps = 0.0;
  double achieved_qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
};

struct ConnRun {
  size_t connections = 0;
  double total_qps = 0.0;
};

std::vector<serve::QueryRequest> MakeMixedWorkload(const Workload& w,
                                                   size_t count,
                                                   uint64_t seed) {
  std::vector<serve::QueryRequest> reqs;
  common::Rng rng(seed);
  const auto bbox = w.net.bounding_box();
  for (size_t i = 0; i < count; ++i) {
    const auto j =
        static_cast<uint32_t>(rng.UniformInt(0, w.corpus.size() - 1));
    const auto& tu = w.corpus[j];
    const double alpha = rng.Uniform(0.1, 0.6);
    switch (rng.UniformInt(0, 2)) {
      case 0:
        reqs.push_back(serve::QueryRequest::MakeWhere(
            j, rng.UniformInt(tu.times.front(), tu.times.back()), alpha));
        break;
      case 1: {
        const auto& path = tu.instances.front().path;
        reqs.push_back(serve::QueryRequest::MakeWhen(
            j, path[rng.UniformInt(0, path.size() - 1)],
            rng.Uniform(0.0, 1.0), alpha));
        break;
      }
      default: {
        const double cx = rng.Uniform(bbox.min_x, bbox.max_x);
        const double cy = rng.Uniform(bbox.min_y, bbox.max_y);
        const double half = rng.Uniform(200.0, 900.0);
        reqs.push_back(serve::QueryRequest::MakeRange(
            {cx - half, cy - half, cx + half, cy + half},
            rng.UniformInt(tu.times.front(), tu.times.back()), alpha));
        break;
      }
    }
  }
  return reqs;
}

}  // namespace

int main(int argc, char** argv) {
  const long arg_traj = argc > 1 ? std::atol(argv[1]) : 0;
  const long arg_queries = argc > 2 ? std::atol(argv[2]) : 0;
  if ((argc > 1 && arg_traj <= 0) || (argc > 2 && arg_queries <= 0)) {
    std::fprintf(stderr, "usage: %s [trajectories > 0] [queries > 0]\n",
                 argv[0]);
    return 2;
  }
  const size_t trajectories =
      argc > 1 ? static_cast<size_t>(arg_traj) : TrajectoryCount(400);
  const size_t queries =
      argc > 2 ? static_cast<size_t>(arg_queries) : size_t{2000};

  const auto w = MakeWorkload(traj::HangzhouProfile(), trajectories);
  const network::GridIndex grid(w->net, 32);
  core::UtcqParams params;
  params.default_interval_s = w->profile.default_interval_s;
  params.eta_p = w->profile.eta_p;
  const core::UtcqSystem sys(w->net, grid, w->corpus, params,
                             core::StiuParams{32, 1800});
  // One registry across engine and server: the kMetrics snapshot then
  // carries every layer (serve.*, net.*) and reconciles against the
  // workload this bench issues.
  obs::MetricRegistry registry;
  serve::EngineOptions engine_opts;
  engine_opts.registry = &registry;
  serve::QueryEngine engine(sys.queries(), engine_opts);

  net::ServerOptions server_opts;
  server_opts.registry = &registry;
  net::TcpServer server(&engine, nullptr, server_opts);
  if (!server.Start()) {
    std::fprintf(stderr, "server failed to start\n");
    return 1;
  }
  std::printf("server on 127.0.0.1:%d, %zu trajectories, %zu queries/run\n",
              server.port(), trajectories, queries);

  const auto workload = MakeMixedWorkload(*w, queries, 7117);
  // Every kQuery frame this bench puts on the wire, for the kMetrics
  // reconciliation at the end.
  uint64_t wire_queries_sent = 0;

  // --- correctness gate: every networked answer must be hit-for-hit
  // identical to in-process execution before any number below means
  // anything.
  size_t mismatches = 0;
  {
    net::Client client;
    if (!client.Connect("127.0.0.1", server.port())) {
      std::fprintf(stderr, "client failed to connect: %s\n",
                   client.last_status().message.c_str());
      return 1;
    }
    const size_t check = std::min<size_t>(workload.size(), 200);
    wire_queries_sent += check;
    for (size_t i = 0; i < check; ++i) {
      serve::QueryResult got;
      if (!client.Query(workload[i], &got).ok) {
        ++mismatches;
        continue;
      }
      const serve::QueryResult want = engine.Execute(workload[i]);
      if (!(got.where == want.where && got.when == want.when &&
            got.range == want.range)) {
        ++mismatches;
      }
    }
    client.Close();
  }
  std::printf("equivalence: %zu mismatches (expected 0)\n", mismatches);

  common::Stopwatch watch;

  // --- closed loop: one request in flight, full round trip per query ----
  double closed_qps = 0.0;
  double closed_p50_us = 0.0;
  double closed_p99_us = 0.0;
  {
    net::Client client;
    client.Connect("127.0.0.1", server.port());
    std::vector<double> lat_us;
    lat_us.reserve(workload.size());
    common::Stopwatch per;
    watch.Restart();
    for (const auto& req : workload) {
      serve::QueryResult got;
      per.Restart();
      if (!client.Query(req, &got).ok) ++mismatches;
      lat_us.push_back(per.ElapsedMicros());
    }
    const double seconds = watch.ElapsedSeconds();
    wire_queries_sent += workload.size();
    closed_qps = SafeRate(static_cast<double>(workload.size()), seconds);
    closed_p50_us = PercentileUs(lat_us, 0.50);
    closed_p99_us = PercentileUs(lat_us, 0.99);
    client.Close();
  }
  std::printf("closed loop: %.0f qps, p50 %.0fus, p99 %.0fus\n", closed_qps,
              closed_p50_us, closed_p99_us);

  // --- pipelined: the whole workload in one burst; the receiver folds the
  // run into ExecuteBatch, so this is the wire ceiling ---------------------
  double pipelined_qps = 0.0;
  {
    net::Client client;
    client.Connect("127.0.0.1", server.port());
    watch.Restart();
    for (const auto& req : workload) client.SendQuery(req);
    bool ok = client.Flush();
    for (size_t i = 0; ok && i < workload.size(); ++i) {
      uint64_t id = 0;
      serve::QueryResult got;
      ok = client.Receive(&id, &got).ok;
    }
    const double seconds = watch.ElapsedSeconds();
    wire_queries_sent += workload.size();
    if (!ok) ++mismatches;
    pipelined_qps = SafeRate(static_cast<double>(workload.size()), seconds);
    client.Close();
  }
  std::printf("pipelined: %.0f qps (%.1fx closed loop)\n", pipelined_qps,
              SafeRatio(pipelined_qps, closed_qps));

  // --- concurrent connections: closed-loop clients in parallel ------------
  std::vector<ConnRun> conn_runs;
  for (const size_t conns : {size_t{1}, size_t{2}, size_t{4}}) {
    const size_t per_client = std::max<size_t>(workload.size() / conns, 1);
    std::atomic<size_t> errors{0};
    std::vector<std::thread> threads;
    watch.Restart();
    for (size_t c = 0; c < conns; ++c) {
      threads.emplace_back([&, c] {
        net::Client client;
        if (!client.Connect("127.0.0.1", server.port())) {
          errors.fetch_add(per_client);
          return;
        }
        for (size_t i = 0; i < per_client; ++i) {
          serve::QueryResult got;
          if (!client.Query(workload[(c * per_client + i) % workload.size()],
                            &got)
                   .ok) {
            errors.fetch_add(1);
          }
        }
        client.Close();
      });
    }
    for (auto& t : threads) t.join();
    const double seconds = watch.ElapsedSeconds();
    wire_queries_sent += per_client * conns;
    mismatches += errors.load();
    conn_runs.push_back(
        {conns, SafeRate(static_cast<double>(per_client * conns), seconds)});
    std::printf("connections=%zu: %.0f qps total\n", conns,
                conn_runs.back().total_qps);
  }

  // --- open loop: offered load independent of completions. Requests are
  // stamped on a fixed arrival schedule and sent pipelined as they come
  // due; latency is measured arrival-to-response, so queueing delay under
  // overload lands in the tail exactly as a client would feel it. The
  // sweep runs at 0.5x / 1x / 2x the measured pipelined capacity — the
  // last rate is deliberately past saturation.
  std::vector<OpenLoopRun> open_runs;
  const double capacity = std::max(pipelined_qps, 1.0);
  for (const double factor : {0.5, 1.0, 2.0}) {
    const double offered = capacity * factor;
    net::Client client;
    client.Connect("127.0.0.1", server.port());
    std::vector<double> arrive_s(workload.size());
    for (size_t i = 0; i < workload.size(); ++i) {
      arrive_s[i] = static_cast<double>(i) / offered;
    }
    std::vector<double> lat_us(workload.size(), 0.0);
    size_t sent = 0;
    size_t received = 0;
    bool ok = true;
    watch.Restart();
    while (ok && received < workload.size()) {
      const double now = watch.ElapsedSeconds();
      // Send everything that has arrived by now in one pipelined burst.
      bool flushed = false;
      while (sent < workload.size() && arrive_s[sent] <= now) {
        client.SendQuery(workload[sent]);
        ++sent;
        flushed = true;
      }
      if (flushed) ok = client.Flush();
      if (!ok) break;
      if (received < sent) {
        // Drain one response, then loop back to keep the arrival schedule.
        // Responses come back strictly in request order, so the i-th
        // response answers the i-th arrival.
        uint64_t id = 0;
        serve::QueryResult got;
        ok = client.Receive(&id, &got).ok;
        if (ok) {
          lat_us[received] =
              (watch.ElapsedSeconds() - arrive_s[received]) * 1e6;
          ++received;
        }
      } else if (sent < workload.size()) {
        // Idle until the next arrival.
        const double wait = arrive_s[sent] - watch.ElapsedSeconds();
        if (wait > 0) {
          std::this_thread::sleep_for(
              std::chrono::duration<double>(std::min(wait, 0.01)));
        }
      }
    }
    const double seconds = watch.ElapsedSeconds();
    wire_queries_sent += sent;
    if (!ok) ++mismatches;
    open_runs.push_back({offered,
                         SafeRate(static_cast<double>(received), seconds),
                         PercentileUs(lat_us, 0.50),
                         PercentileUs(lat_us, 0.99),
                         PercentileUs(lat_us, 0.999)});
    std::printf(
        "open loop %.1fx: offered %.0f qps, achieved %.0f qps, "
        "p50 %.0fus, p99 %.0fus, p999 %.0fus\n",
        factor, offered, open_runs.back().achieved_qps,
        open_runs.back().p50_us, open_runs.back().p99_us,
        open_runs.back().p999_us);
    client.Close();
  }

  // --- kMetrics reconciliation: fetch the server's snapshot over the
  // wire and check it accounts for exactly the workload this process
  // issued — the end-to-end proof that no request escapes the counters.
  {
    net::Client client;
    obs::RegistrySnapshot wire_snap;
    if (!client.Connect("127.0.0.1", server.port()) ||
        !client.Metrics(&wire_snap).ok) {
      std::fprintf(stderr, "kMetrics fetch failed\n");
      ++mismatches;
    } else {
      uint64_t wire_queries = 0;
      uint64_t cache_hits = 0;
      uint64_t cache_misses = 0;
      for (const auto& [name, value] : wire_snap.counters) {
        if (name == "net.requests.query") wire_queries = value;
        if (name == "serve.cache.hits") cache_hits = value;
        if (name == "serve.cache.misses") cache_misses = value;
      }
      const auto es = engine.stats();
      // The in-process equivalence gate also ran `check` queries through
      // the engine (not the wire), so cache traffic reconciles against
      // engine stats, and the query counter against frames sent.
      const bool reconciled =
          wire_queries == wire_queries_sent &&
          cache_hits == es.cache_hits && cache_misses == es.cache_misses;
      std::printf(
          "kMetrics reconciliation: %s (wire queries %llu vs sent %llu, "
          "cache %llu+%llu vs engine %llu+%llu)\n",
          reconciled ? "ok" : "MISMATCH",
          static_cast<unsigned long long>(wire_queries),
          static_cast<unsigned long long>(wire_queries_sent),
          static_cast<unsigned long long>(cache_hits),
          static_cast<unsigned long long>(cache_misses),
          static_cast<unsigned long long>(es.cache_hits),
          static_cast<unsigned long long>(es.cache_misses));
      if (!reconciled) ++mismatches;
    }
    client.Close();
  }

  const auto counters = server.counters();
  server.Shutdown();
  const obs::RegistrySnapshot metrics_snap = registry.Snapshot();

  std::FILE* json = std::fopen("BENCH_net.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_net.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"serve_net\",\n");
  std::fprintf(json, "  \"trajectories\": %zu,\n", trajectories);
  std::fprintf(json, "  \"queries_per_run\": %zu,\n", workload.size());
  std::fprintf(json, "  \"equivalence_mismatches\": %zu,\n", mismatches);
  std::fprintf(json, "  \"connections_accepted\": %llu,\n",
               static_cast<unsigned long long>(counters.connections_accepted));
  std::fprintf(json, "  \"frames_handled\": %llu,\n",
               static_cast<unsigned long long>(counters.frames_handled));
  std::fprintf(json, "  \"closed_loop_qps\": %.3f,\n", closed_qps);
  std::fprintf(json, "  \"closed_loop_p50_us\": %.2f,\n", closed_p50_us);
  std::fprintf(json, "  \"closed_loop_p99_us\": %.2f,\n", closed_p99_us);
  std::fprintf(json, "  \"pipelined_qps\": %.3f,\n", pipelined_qps);
  std::fprintf(json, "  \"pipelined_over_closed\": %.3f,\n",
               SafeRatio(pipelined_qps, closed_qps));
  std::fprintf(json, "  \"connection_runs\": [\n");
  for (size_t i = 0; i < conn_runs.size(); ++i) {
    std::fprintf(json,
                 "    {\"connections\": %zu, \"total_qps\": %.3f}%s\n",
                 conn_runs[i].connections, conn_runs[i].total_qps,
                 i + 1 < conn_runs.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"open_loop_runs\": [\n");
  for (size_t i = 0; i < open_runs.size(); ++i) {
    const OpenLoopRun& r = open_runs[i];
    std::fprintf(json,
                 "    {\"offered_qps\": %.3f, \"achieved_qps\": %.3f, "
                 "\"p50_us\": %.2f, \"p99_us\": %.2f, \"p999_us\": %.2f}%s\n",
                 r.offered_qps, r.achieved_qps, r.p50_us, r.p99_us, r.p999_us,
                 i + 1 < open_runs.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  AppendMetricsJson(json, metrics_snap);
  std::fprintf(json, "\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_net.json\n");
  return mismatches == 0 ? 0 : 1;
}
