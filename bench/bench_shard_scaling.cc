// Shard-scaling benchmark: compression-build wall time versus shard/thread
// count, plus sharded-vs-unsharded query equivalence on the same corpus.
//
// Emits BENCH_shard.json (machine-readable, one object) so the perf
// trajectory of the parallel pipeline has a recorded baseline. Speedups are
// relative to the 1-shard/1-thread build; near-linear scaling needs as many
// hardware threads as shards (threads_available is recorded so a 1-core
// reading is not mistaken for a scaling regression).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bench_metrics.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/utcq.h"
#include "obs/metrics.h"
#include "shard/sharded.h"

namespace {

using namespace utcq;         // NOLINT
using namespace utcq::bench;  // NOLINT

struct Run {
  uint32_t shards = 0;
  unsigned threads = 0;
  double seconds = 0.0;
  uint64_t total_bits = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const long requested = argc > 1 ? std::atol(argv[1]) : 0;
  if (argc > 1 && requested <= 0) {
    std::fprintf(stderr, "usage: %s [trajectories > 0]\n", argv[0]);
    return 2;
  }
  const size_t trajectories = argc > 1 ? static_cast<size_t>(requested)
                                       : TrajectoryCount(1200);
  const auto w = MakeWorkload(traj::HangzhouProfile(), trajectories);
  const network::GridIndex grid(w->net, 32);

  core::UtcqParams params;
  params.default_interval_s = w->profile.default_interval_s;
  params.eta_p = w->profile.eta_p;
  const core::StiuParams index_params{32, 1800};

  std::vector<Run> runs;
  for (const uint32_t shards : {1u, 2u, 4u, 8u}) {
    shard::ShardOptions opts;
    opts.num_shards = shards;
    opts.num_threads = shards;  // one worker per shard
    const shard::ShardedCompressor compressor(w->net, grid, params,
                                              index_params, opts);
    // What ParallelFor actually runs with — on a 1-core box an 8-shard
    // build uses 1 thread, and recording "8" here would make the flat
    // speedup curve read as a scaling regression.
    const unsigned effective = common::EffectiveThreads(shards, shards);
    // Best of two: the first run also warms allocator and page cache.
    double best = 0.0;
    uint64_t bits = 0;
    for (int rep = 0; rep < 2; ++rep) {
      common::Stopwatch watch;
      const shard::ShardedBuild build = compressor.Compress(w->corpus);
      const double s = watch.ElapsedSeconds();
      if (rep == 0 || s < best) best = s;
      bits = build.total_bits();
    }
    runs.push_back({shards, effective, best, bits});
    std::printf("shards=%u threads=%u build=%.3fs total_bits=%llu\n", shards,
                effective, best, static_cast<unsigned long long>(bits));
  }

  // Query equivalence spot check: save the 8-shard set, reopen, and compare
  // a batch of range queries against the unsharded system.
  size_t checked = 0;
  size_t mismatches = 0;
  {
    const core::UtcqSystem sys(w->net, grid, w->corpus, params, index_params);
    shard::ShardOptions opts;
    opts.num_shards = 8;
    const shard::ShardedCompressor compressor(w->net, grid, params,
                                              index_params, opts);
    const shard::ShardedBuild build = compressor.Compress(w->corpus);
    const char* tmpdir = std::getenv("TMPDIR");
    const std::string manifest =
        std::string(tmpdir != nullptr ? tmpdir : "/tmp") +
        "/bench_shard_set.utcq";
    std::string error;
    if (!build.Save(manifest, &error)) {
      std::fprintf(stderr, "save failed: %s\n", error.c_str());
      return 1;
    }
    shard::ShardedCorpus sharded;
    if (!sharded.Open(w->net, manifest, &error)) {
      std::fprintf(stderr, "open failed: %s\n", error.c_str());
      return 1;
    }
    common::Rng rng(7);
    const auto bbox = w->net.bounding_box();
    for (int q = 0; q < 50; ++q) {
      const double cx = rng.Uniform(bbox.min_x, bbox.max_x);
      const double cy = rng.Uniform(bbox.min_y, bbox.max_y);
      const double half = rng.Uniform(200.0, 800.0);
      const network::Rect re{cx - half, cy - half, cx + half, cy + half};
      const auto tq = rng.UniformInt(0, traj::kSecondsPerDay - 1);
      ++checked;
      if (sharded.Range(re, tq, 0.3) != sys.queries().Range(re, tq, 0.3)) {
        ++mismatches;
      }
    }
    for (uint32_t s = 0; s < build.plan.num_shards(); ++s) {
      std::remove(shard::ShardArchivePath(manifest, s).c_str());
    }
    std::remove(manifest.c_str());
  }
  std::printf("query equivalence: %zu/%zu range queries identical\n",
              checked - mismatches, checked);

  // Guarded ratio: on a fast box with few trajectories the timer can read
  // ~0 — report 0.0 rather than emitting inf/NaN into the JSON baseline.
  const auto speedup = [](double base_s, double s) {
    return s > 0.0 ? base_s / s : 0.0;
  };
  const double base = runs.front().seconds;
  std::FILE* json = std::fopen("BENCH_shard.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_shard.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"shard_scaling\",\n");
  std::fprintf(json, "  \"trajectories\": %zu,\n", trajectories);
  std::fprintf(json, "  \"threads_available\": %u,\n",
               common::DefaultThreads());
  std::fprintf(json, "  \"query_equivalence_checked\": %zu,\n", checked);
  std::fprintf(json, "  \"query_equivalence_mismatches\": %zu,\n",
               mismatches);
  std::fprintf(json, "  \"runs\": [\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    const Run& r = runs[i];
    std::fprintf(json,
                 "    {\"shards\": %u, \"threads\": %u, \"seconds\": %.6f, "
                 "\"speedup_vs_1shard\": %.3f, \"total_bits\": %llu}%s\n",
                 r.shards, r.threads, r.seconds, speedup(base, r.seconds),
                 static_cast<unsigned long long>(r.total_bits),
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  AppendMetricsJson(json, obs::MetricRegistry::Global().Snapshot());
  std::fprintf(json, "\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_shard.json (speedup at 8 shards: %.2fx)\n",
              speedup(base, runs.back().seconds));
  return mismatches == 0 ? 0 : 1;
}
