// Fig. 8: effect of the number of pivots (1..5) on compression ratio and
// time.
//
// Paper shape: more pivots -> a (slightly) better ratio, because the FJD
// similarity estimate gets more accurate and reference selection improves;
// compression time and working set grow with the pivot count.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/encoder.h"
#include "core/utcq.h"

namespace {

using namespace utcq;          // NOLINT
using namespace utcq::bench;   // NOLINT

void BM_Pivots(benchmark::State& state, traj::DatasetProfile profile,
               int pivots) {
  const auto w = MakeWorkload(profile, TrajectoryCount(300));
  const auto raw = traj::MeasureRawSize(w->net, w->corpus);
  core::UtcqParams params;
  params.default_interval_s = profile.default_interval_s;
  params.eta_p = profile.eta_p;
  params.num_pivots = pivots;
  core::CompressionReport report;
  for (auto _ : state) {
    common::Stopwatch watch;
    core::UtcqCompressor comp(w->net, params);
    const auto cc = comp.Compress(w->corpus);
    report = core::MakeReport(raw, cc.compressed_bits(),
                              watch.ElapsedSeconds(), cc.peak_memory_bytes());
    benchmark::DoNotOptimize(cc.total_bits());
  }
  state.counters["CR"] = report.total;
  state.counters["compress_s"] = report.seconds;
  state.counters["peak_mem_KiB"] = report.peak_memory_bytes / 1024.0;
}

}  // namespace

int main(int argc, char** argv) {
  for (const auto& profile : utcq::traj::AllProfiles()) {
    for (int pivots = 1; pivots <= 5; ++pivots) {
      benchmark::RegisterBenchmark(
          ("Fig8/" + profile.name + "/pivots:" + std::to_string(pivots))
              .c_str(),
          BM_Pivots, profile, pivots)
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
