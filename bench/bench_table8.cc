// Table 8: compression ratio (Total, T, E, D, T', p) and compression time
// for UTCQ vs the adapted TED baseline on the DK / CD / HZ profiles.
//
// Paper shape to check: UTCQ total CR is a multiple of TED's; SIAR beats
// TED's (i,t) pairs on T; referential coding lifts E, D and T' while TED's
// T' stays exactly 1; p is identical for both (same PDDP codec).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/encoder.h"
#include "core/utcq.h"
#include "ted/ted_compress.h"

namespace {

using namespace utcq;          // NOLINT
using namespace utcq::bench;   // NOLINT

void SetCounters(benchmark::State& state, const core::CompressionReport& r) {
  state.counters["CR_total"] = r.total;
  state.counters["CR_T"] = r.t;
  state.counters["CR_E"] = r.e;
  state.counters["CR_D"] = r.d;
  state.counters["CR_Tflag"] = r.tflag;
  state.counters["CR_p"] = r.p;
  state.counters["compress_s"] = r.seconds;
  state.counters["peak_mem_KiB"] =
      static_cast<double>(r.peak_memory_bytes) / 1024.0;
}

void BM_UtcqCompress(benchmark::State& state, traj::DatasetProfile profile) {
  const auto w = MakeWorkload(profile, TrajectoryCount(400));
  const auto raw = traj::MeasureRawSize(w->net, w->corpus);
  core::UtcqParams params;
  params.default_interval_s = profile.default_interval_s;
  params.eta_p = profile.eta_p;
  params.num_pivots = profile.name == "DK" ? 2 : 1;
  core::CompressionReport report;
  for (auto _ : state) {
    common::Stopwatch watch;
    core::UtcqCompressor comp(w->net, params);
    const auto cc = comp.Compress(w->corpus);
    report = core::MakeReport(raw, cc.compressed_bits(),
                              watch.ElapsedSeconds(),
                              cc.peak_memory_bytes());
    benchmark::DoNotOptimize(cc.total_bits());
  }
  SetCounters(state, report);
}

void BM_TedCompress(benchmark::State& state, traj::DatasetProfile profile) {
  const auto w = MakeWorkload(profile, TrajectoryCount(400));
  const auto raw = traj::MeasureRawSize(w->net, w->corpus);
  ted::TedParams params;
  params.eta_p = profile.eta_p;
  core::CompressionReport report;
  for (auto _ : state) {
    common::Stopwatch watch;
    ted::TedCompressor comp(w->net, params);
    const auto cc = comp.Compress(w->corpus);
    report = core::MakeReport(raw, cc.compressed_bits(),
                              watch.ElapsedSeconds(),
                              cc.peak_memory_bytes());
    benchmark::DoNotOptimize(cc.compressed_bits().total());
  }
  SetCounters(state, report);
}

}  // namespace

int main(int argc, char** argv) {
  for (const auto& profile : utcq::traj::AllProfiles()) {
    benchmark::RegisterBenchmark(("Table8/UTCQ/" + profile.name).c_str(),
                                 BM_UtcqCompress, profile)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(("Table8/TED/" + profile.name).c_str(),
                                 BM_TedCompress, profile)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
