// Fig. 4: dataset statistics that motivate SIAR and referential coding.
//  4a — fraction of sample-interval deviations per bucket
//       {0s, 1s, (1,50]s, (50,100]s, >100s}; the paper reports 93% / 62% /
//       54% of deviations within 1s on DK / CD / HZ.
//  4b — E(.) edit-distance histograms within one uncertain trajectory
//       (concentrated in [0,5]) vs across trajectories (mass at >= 9).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "traj/statistics.h"

namespace {

using namespace utcq;          // NOLINT
using namespace utcq::bench;   // NOLINT

void BM_IntervalHistogram(benchmark::State& state,
                          traj::DatasetProfile profile) {
  const auto w = MakeWorkload(profile, TrajectoryCount(400));
  traj::IntervalHistogram h;
  for (auto _ : state) {
    h = traj::ComputeIntervalHistogram(w->corpus, profile.default_interval_s);
    benchmark::DoNotOptimize(h.total);
  }
  state.counters["frac_0s"] = h.fraction[0];
  state.counters["frac_1s"] = h.fraction[1];
  state.counters["frac_1_50s"] = h.fraction[2];
  state.counters["frac_50_100s"] = h.fraction[3];
  state.counters["frac_gt100s"] = h.fraction[4];
  state.counters["within_1s"] = h.within_one();
  state.counters["avg_run_len"] = traj::AverageRunLength(w->corpus);
}

void BM_EditDistances(benchmark::State& state, traj::DatasetProfile profile) {
  const auto w = MakeWorkload(profile, TrajectoryCount(300));
  traj::EditDistanceHistogram within;
  traj::EditDistanceHistogram across;
  for (auto _ : state) {
    common::Rng rng(5);
    within = traj::ComputeWithinDistances(w->net, w->corpus, rng);
    across = traj::ComputeAcrossDistances(w->net, w->corpus, rng, 2000);
    benchmark::DoNotOptimize(within.total);
  }
  state.counters["within_0_2"] = within.fraction[0];
  state.counters["within_3_5"] = within.fraction[1];
  state.counters["within_6_8"] = within.fraction[2];
  state.counters["within_ge9"] = within.fraction[3];
  state.counters["across_0_2"] = across.fraction[0];
  state.counters["across_3_5"] = across.fraction[1];
  state.counters["across_6_8"] = across.fraction[2];
  state.counters["across_ge9"] = across.fraction[3];
}

}  // namespace

int main(int argc, char** argv) {
  for (const auto& profile : utcq::traj::AllProfiles()) {
    benchmark::RegisterBenchmark(("Fig4a/intervals/" + profile.name).c_str(),
                                 BM_IntervalHistogram, profile)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(("Fig4b/editdist/" + profile.name).c_str(),
                                 BM_EditDistances, profile)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
