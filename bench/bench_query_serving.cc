// Query-serving benchmark: cold vs. warm throughput through the
// serve::QueryEngine's decoded-trajectory cache, batched execution at
// batch sizes {1, 16, 256}, and the cache-budget sweep.
//
// Emits BENCH_query.json (machine-readable, one object) — the recorded
// baseline for the serving layer, the counterpart of BENCH_shard.json for
// the build pipeline. Every division is guarded: a sub-resolution timer
// reading must produce 0, never NaN/inf, so CI's JSON validation can
// reject genuine corruption.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bench_metrics.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/utcq.h"
#include "obs/metrics.h"
#include "serve/query_engine.h"

namespace {

using namespace utcq;         // NOLINT
using namespace utcq::bench;  // NOLINT

double SafeRate(double count, double seconds) {
  return seconds > 0.0 ? count / seconds : 0.0;
}

double SafeRatio(double num, double den) { return den > 0.0 ? num / den : 0.0; }

struct BatchRun {
  size_t batch_size = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double hit_rate = 0.0;
};

struct BudgetRun {
  size_t budget_bytes = 0;
  double qps = 0.0;
  double hit_rate = 0.0;
  size_t resident_bytes = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const long requested = argc > 1 ? std::atol(argv[1]) : 0;
  if (argc > 1 && requested <= 0) {
    std::fprintf(stderr, "usage: %s [trajectories > 0]\n", argv[0]);
    return 2;
  }
  const size_t trajectories = argc > 1 ? static_cast<size_t>(requested)
                                       : TrajectoryCount(800);
  const auto w = MakeWorkload(traj::HangzhouProfile(), trajectories);
  const network::GridIndex grid(w->net, 32);

  core::UtcqParams params;
  params.default_interval_s = w->profile.default_interval_s;
  params.eta_p = w->profile.eta_p;
  // Dense sync tables: HZ trajectories are short (mean ~13 edges), so the
  // default interval of 32 would leave most of them sync-free and the
  // cold-bracketed section below would never seek. Sync emission is
  // meta-only — stream bytes and every result are unchanged.
  params.t_sync_interval = 4;
  const core::UtcqSystem sys(w->net, grid, w->corpus, params,
                             core::StiuParams{32, 1800});
  const double alpha = 0.3;

  // Point-query targets: one Where at the trajectory's mid time and one
  // When on an edge its first instance travels — both answerable, neither
  // trivially empty.
  struct Point {
    uint32_t traj;
    traj::Timestamp t;
    network::EdgeId edge;
  };
  std::vector<Point> points;
  const size_t distinct = std::min<size_t>(trajectories, 400);
  for (uint32_t j = 0; j < distinct; ++j) {
    const auto& tu = w->corpus[j];
    points.push_back({j, (tu.times.front() + tu.times.back()) / 2,
                      tu.instances.front().path.front()});
  }

  // --- correctness gate: the engine must be result-identical to the
  // uncached processor before any of its numbers mean anything.
  size_t mismatches = 0;
  {
    serve::QueryEngine engine(sys.queries());
    for (int pass = 0; pass < 2; ++pass) {  // pass 0 cold, pass 1 warm
      for (size_t i = 0; i < std::min<size_t>(points.size(), 50); ++i) {
        const Point& p = points[i];
        if (engine.Where(p.traj, p.t, alpha) !=
            sys.queries().Where(p.traj, p.t, alpha)) {
          ++mismatches;
        }
        if (engine.When(p.traj, p.edge, 0.5, alpha) !=
            sys.queries().When(p.traj, p.edge, 0.5, alpha)) {
          ++mismatches;
        }
      }
    }
  }
  std::printf("equivalence: %zu mismatches (expected 0)\n", mismatches);

  // --- cold vs. warm single-trajectory throughput -------------------------
  // Cold = every query pays the full bitstream decode (retention disabled
  // and partial decode forced off, preserving the pre-v3 baseline);
  // warm = the working set is fully resident after an untimed fill pass.
  serve::EngineOptions cold_opts;
  cold_opts.cache_budget_bytes = 0;
  cold_opts.partial_decode = serve::PartialDecode::kOff;
  serve::QueryEngine cold_engine(sys.queries(), cold_opts);
  common::Stopwatch watch;
  for (const Point& p : points) {
    cold_engine.Where(p.traj, p.t, alpha);
    cold_engine.When(p.traj, p.edge, 0.5, alpha);
  }
  const double cold_seconds = watch.ElapsedSeconds();
  const double cold_queries = 2.0 * static_cast<double>(points.size());
  const double cold_hit_rate = cold_engine.stats().hit_rate();

  // --- cold time-bracketed partial decode (archive v3, DESIGN.md §16) -----
  // The same budget-0 workload answered from the seekable bitstreams
  // (kAuto turns partial decode on when nothing can stay resident). The
  // acceptance gate is strict: the bracketed path must consume fewer
  // compressed-stream bytes than the full decodes above — otherwise the
  // seek machinery is dead weight and this benchmark fails the run.
  serve::EngineOptions bracketed_opts;
  bracketed_opts.cache_budget_bytes = 0;
  serve::QueryEngine bracketed_engine(sys.queries(), bracketed_opts);
  size_t bracketed_mismatches = 0;
  for (size_t i = 0; i < std::min<size_t>(points.size(), 50); ++i) {
    const Point& p = points[i];
    if (bracketed_engine.Where(p.traj, p.t, alpha) !=
        sys.queries().Where(p.traj, p.t, alpha)) {
      ++bracketed_mismatches;
    }
    if (bracketed_engine.When(p.traj, p.edge, 0.5, alpha) !=
        sys.queries().When(p.traj, p.edge, 0.5, alpha)) {
      ++bracketed_mismatches;
    }
  }
  watch.Restart();
  for (const Point& p : points) {
    bracketed_engine.Where(p.traj, p.t, alpha);
    bracketed_engine.When(p.traj, p.edge, 0.5, alpha);
  }
  const double bracketed_seconds = watch.ElapsedSeconds();
  const double cold_bracketed_qps = SafeRate(cold_queries, bracketed_seconds);
  const auto bracketed_stats = bracketed_engine.stats();
  const uint64_t decode_bytes_partial = bracketed_stats.decode_bytes_partial;
  const uint64_t decode_bytes_full_cold = cold_engine.stats().bytes_decoded;
  const uint64_t sync_seeks = bracketed_stats.sync_seeks;
  const bool partial_gate_ok =
      bracketed_mismatches == 0 && bracketed_stats.partial_queries > 0 &&
      decode_bytes_partial > 0 && decode_bytes_partial < decode_bytes_full_cold;
  std::printf(
      "cold bracketed: %.0f qps, %llu partial stream bytes vs %llu full "
      "decode bytes, %llu sync seeks, gate %s\n",
      cold_bracketed_qps,
      static_cast<unsigned long long>(decode_bytes_partial),
      static_cast<unsigned long long>(decode_bytes_full_cold),
      static_cast<unsigned long long>(sync_seeks),
      partial_gate_ok ? "ok" : "FAILED");

  serve::EngineOptions warm_opts;
  warm_opts.cache_budget_bytes = 128ull << 20;
  // The warm engine is the instrumented one: its registry becomes the
  // baseline's "metrics" object (the other engines keep private
  // registries so their stats stay phase-exact).
  obs::MetricRegistry metrics_registry;
  warm_opts.registry = &metrics_registry;
  serve::QueryEngine engine(sys.queries(), warm_opts);
  for (const Point& p : points) {  // untimed fill
    engine.Where(p.traj, p.t, alpha);
    engine.When(p.traj, p.edge, 0.5, alpha);
  }

  const int warm_reps = 5;
  const auto warm_before = engine.stats();
  watch.Restart();
  for (int rep = 0; rep < warm_reps; ++rep) {
    for (const Point& p : points) {
      engine.Where(p.traj, p.t, alpha);
      engine.When(p.traj, p.edge, 0.5, alpha);
    }
  }
  const double warm_seconds = watch.ElapsedSeconds();
  const double warm_queries = warm_reps * cold_queries;
  const auto warm_after = engine.stats();
  const uint64_t warm_lookups = (warm_after.cache_hits + warm_after.cache_misses) -
                                (warm_before.cache_hits + warm_before.cache_misses);
  const double warm_hit_rate = SafeRatio(
      static_cast<double>(warm_after.cache_hits - warm_before.cache_hits),
      static_cast<double>(warm_lookups));

  const double cold_qps = SafeRate(cold_queries, cold_seconds);
  const double warm_qps = SafeRate(warm_queries, warm_seconds);
  std::printf("cold: %.0f qps, warm: %.0f qps (%.1fx), warm hit rate %.3f\n",
              cold_qps, warm_qps, SafeRatio(warm_qps, cold_qps),
              warm_hit_rate);

  // --- batched execution under cache pressure -----------------------------
  // The stream round-robins across more trajectories than the budget can
  // hold: one-at-a-time execution thrashes the LRU, batch grouping decodes
  // each trajectory once per batch. This is the workload batching exists
  // for; extra cores sharpen it but are not required.
  const size_t pool = std::min<size_t>(points.size(), 64);
  size_t avg_bytes = 0;
  for (size_t j = 0; j < std::min<size_t>(pool, 8); ++j) {
    avg_bytes += sys.queries().decoder().DecodeTraj(points[j].traj).ApproxBytes();
  }
  avg_bytes /= std::min<size_t>(pool, 8);

  std::vector<serve::QueryRequest> stream;
  for (size_t i = 0; i < 1024; ++i) {
    const Point& p = points[i % pool];
    stream.push_back(i % 2 == 0
                         ? serve::QueryRequest::MakeWhere(p.traj, p.t, alpha)
                         : serve::QueryRequest::MakeWhen(p.traj, p.edge, 0.5,
                                                         alpha));
  }

  std::vector<BatchRun> batch_runs;
  for (const size_t batch_size : {size_t{1}, size_t{16}, size_t{256}}) {
    serve::EngineOptions opts;
    // Room for ~8 decoded trajectories: far less than the 64 the stream
    // cycles through, so retention alone cannot serve it.
    opts.cache_budget_bytes = 8 * avg_bytes;
    serve::QueryEngine batch_engine(sys.queries(), opts);
    watch.Restart();
    for (size_t off = 0; off < stream.size(); off += batch_size) {
      const std::vector<serve::QueryRequest> chunk(
          stream.begin() + off,
          stream.begin() + std::min(off + batch_size, stream.size()));
      batch_engine.ExecuteBatch(chunk);
    }
    const double seconds = watch.ElapsedSeconds();
    batch_runs.push_back({batch_size, seconds,
                          SafeRate(static_cast<double>(stream.size()), seconds),
                          batch_engine.stats().hit_rate()});
    std::printf("batch=%zu: %.3fs, %.0f qps, hit rate %.3f\n", batch_size,
                seconds, batch_runs.back().qps, batch_runs.back().hit_rate);
  }

  // --- cache-budget sweep -------------------------------------------------
  std::vector<BudgetRun> budget_runs;
  common::Rng rng(11);
  std::vector<serve::QueryRequest> skewed;
  for (size_t i = 0; i < 2048; ++i) {
    // Square the uniform draw: a zipf-ish skew toward low indices, the
    // popular-entity access pattern caches are built for.
    const double u = rng.Uniform(0.0, 1.0);
    const Point& p = points[static_cast<size_t>(
        u * u * static_cast<double>(points.size() - 1))];
    skewed.push_back(serve::QueryRequest::MakeWhere(p.traj, p.t, alpha));
  }
  for (const size_t budget :
       {size_t{0}, size_t{2} << 20, size_t{16} << 20, size_t{128} << 20}) {
    serve::EngineOptions opts;
    opts.cache_budget_bytes = budget;
    serve::QueryEngine sweep_engine(sys.queries(), opts);
    watch.Restart();
    for (const auto& req : skewed) sweep_engine.Execute(req);
    const double seconds = watch.ElapsedSeconds();
    const auto stats = sweep_engine.stats();
    budget_runs.push_back(
        {budget, SafeRate(static_cast<double>(skewed.size()), seconds),
         stats.hit_rate(), stats.cache_resident_bytes});
    std::printf("budget=%zuMiB: %.0f qps, hit rate %.3f\n", budget >> 20,
                budget_runs.back().qps, budget_runs.back().hit_rate);
  }

  const auto final_stats = engine.stats();
  std::FILE* json = std::fopen("BENCH_query.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_query.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"query_serving\",\n");
  std::fprintf(json, "  \"trajectories\": %zu,\n", trajectories);
  std::fprintf(json, "  \"distinct_targets\": %zu,\n", points.size());
  std::fprintf(json, "  \"threads_available\": %u,\n",
               common::DefaultThreads());
  std::fprintf(json, "  \"threads_effective_batch\": %u,\n",
               common::EffectiveThreads(256, 0));
  std::fprintf(json, "  \"equivalence_mismatches\": %zu,\n", mismatches);
  std::fprintf(json, "  \"cold_qps\": %.3f,\n", cold_qps);
  std::fprintf(json, "  \"warm_qps\": %.3f,\n", warm_qps);
  std::fprintf(json, "  \"warm_over_cold\": %.3f,\n",
               SafeRatio(warm_qps, cold_qps));
  std::fprintf(json, "  \"cold_hit_rate\": %.4f,\n", cold_hit_rate);
  std::fprintf(json, "  \"warm_hit_rate\": %.4f,\n", warm_hit_rate);
  std::fprintf(json, "  \"cold_bracketed_qps\": %.3f,\n", cold_bracketed_qps);
  std::fprintf(json, "  \"bracketed_over_cold\": %.3f,\n",
               SafeRatio(cold_bracketed_qps, cold_qps));
  std::fprintf(json, "  \"decode_bytes_partial\": %llu,\n",
               static_cast<unsigned long long>(decode_bytes_partial));
  std::fprintf(json, "  \"decode_bytes_full_cold\": %llu,\n",
               static_cast<unsigned long long>(decode_bytes_full_cold));
  std::fprintf(json, "  \"sync_seeks\": %llu,\n",
               static_cast<unsigned long long>(sync_seeks));
  std::fprintf(json, "  \"p50_latency_us\": %.2f,\n",
               final_stats.p50_latency_us);
  std::fprintf(json, "  \"p99_latency_us\": %.2f,\n",
               final_stats.p99_latency_us);
  std::fprintf(json, "  \"avg_decoded_traj_bytes\": %zu,\n", avg_bytes);
  std::fprintf(json, "  \"batch_runs\": [\n");
  for (size_t i = 0; i < batch_runs.size(); ++i) {
    const BatchRun& r = batch_runs[i];
    std::fprintf(json,
                 "    {\"batch_size\": %zu, \"seconds\": %.6f, "
                 "\"qps\": %.3f, \"hit_rate\": %.4f}%s\n",
                 r.batch_size, r.seconds, r.qps, r.hit_rate,
                 i + 1 < batch_runs.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"budget_runs\": [\n");
  for (size_t i = 0; i < budget_runs.size(); ++i) {
    const BudgetRun& r = budget_runs[i];
    std::fprintf(json,
                 "    {\"budget_bytes\": %zu, \"qps\": %.3f, "
                 "\"hit_rate\": %.4f, \"resident_bytes\": %zu}%s\n",
                 r.budget_bytes, r.qps, r.hit_rate, r.resident_bytes,
                 i + 1 < budget_runs.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  AppendMetricsJson(json, metrics_registry.Snapshot());
  std::fprintf(json, "\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_query.json\n");
  return mismatches == 0 && partial_gate_ok ? 0 : 1;
}
